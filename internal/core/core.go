// Package core implements the paper's primary contribution: revocable
// synchronized sections with preemption-based avoidance of priority
// inversion.
//
// A Runtime hosts simulated threads (Tasks) that execute synchronized
// sections over a simulated heap. In Revocation mode (the paper's "modified
// VM"), every store inside a synchronized section passes through a write
// barrier that records the old value in a per-thread sequential undo log
// (§3.1.2). When a thread tries to acquire a monitor whose deposited owner
// priority is lower than its own, the runtime requests revocation of the
// owner's section: at the owner's next yield point the runtime replays its
// undo log in reverse, releases the monitors acquired by the doomed span
// (handing the contended monitor directly to the high-priority waiter), and
// transfers control of the owner back to the start of the section for
// re-execution (§1.1, Figure 1). In Unmodified mode (the paper's baseline
// VM) acquisition simply blocks, with the same prioritized monitor queues.
//
// JMM-consistency (§2.2) is preserved by marking monitors non-revocable
// when rollback could expose "out of thin air" values: cross-thread reads
// of speculatively written locations (including volatiles), native-method
// calls, and wait performed in a nested monitor. The same machinery detects
// and breaks monitor deadlocks.
package core

import (
	"errors"
	"fmt"

	"repro/internal/heap"
	"repro/internal/jmm"
	"repro/internal/monitor"
	"repro/internal/prof"
	"repro/internal/race"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/undo"
)

// Mode selects which virtual machine the runtime models.
type Mode int

const (
	// Unmodified is the paper's reference VM: no write barriers, no
	// logging, no revocation. A high-priority thread arriving at a held
	// monitor waits for the owner to exit the section.
	Unmodified Mode = iota
	// Revocation is the paper's modified VM: compiled code logs updates
	// inside synchronized sections and the runtime revokes sections held
	// by lower-priority threads when higher-priority threads need them.
	Revocation
)

func (m Mode) String() string {
	switch m {
	case Unmodified:
		return "unmodified"
	case Revocation:
		return "revocation"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// DetectMode selects when priority inversion is detected (§1.1: "either at
// lock acquisition, or periodically in the background").
type DetectMode int

const (
	// DetectOnAcquire checks at every contended acquisition (the paper's
	// evaluated configuration, §4).
	DetectOnAcquire DetectMode = iota
	// DetectPeriodic scans all monitors every Config.DetectPeriod ticks.
	DetectPeriodic
	// DetectBoth combines the two.
	DetectBoth
)

func (d DetectMode) String() string {
	switch d {
	case DetectOnAcquire:
		return "on-acquire"
	case DetectPeriodic:
		return "periodic"
	case DetectBoth:
		return "both"
	default:
		return fmt.Sprintf("detect(%d)", int(d))
	}
}

// Config parameterizes a Runtime.
type Config struct {
	// Sched configures the underlying scheduler (quantum, policy, seed).
	Sched sched.Config
	// Mode selects Unmodified or Revocation behaviour.
	Mode Mode
	// Detect selects the inversion-detection strategy (Revocation mode).
	Detect DetectMode
	// DetectPeriod is the background scan period for DetectPeriodic /
	// DetectBoth; zero selects one quantum.
	DetectPeriod simtime.Ticks

	// CostRead/CostWrite are the tick charges for one shared-data read or
	// write; both default to 1, making section execution time proportional
	// to the number of shared-data operations (§4.1).
	CostRead  simtime.Ticks
	CostWrite simtime.Ticks
	// CostLogEntry is the extra charge for the write-barrier slow path
	// (logging one update). Defaults to 1.
	CostLogEntry simtime.Ticks
	// CostUndoEntry is the charge for restoring one logged location during
	// rollback. Defaults to 1.
	CostUndoEntry simtime.Ticks

	// NoCosts disables all tick charging by the barrier fast paths (used
	// by wall-clock micro-benchmarks of the mechanism itself).
	NoCosts bool

	// TrackDependencies enables the §2.2 read-barrier machinery that
	// marks monitors non-revocable on cross-thread reads of speculative
	// locations. The paper's implementation describes this design but its
	// benchmark never triggers it; disable to measure the difference.
	TrackDependencies bool

	// DeadlockDetection enables waits-for cycle detection at blocking
	// acquisitions, resolved by revocation (Revocation mode only).
	DeadlockDetection bool
	// DeadlockBackoff is the base backoff slept after a deadlock-triggered
	// rollback before re-execution (multiplied by the retry count) — the
	// guard against the revocation livelock the paper warns about (§1.1).
	// Zero selects one quantum.
	DeadlockBackoff simtime.Ticks

	// PriorityInheritance enables the classic inheritance protocol: a
	// blocking thread donates its priority to the monitor owner
	// (transitively). Used by the baseline package and as a fallback for
	// non-revocable sections when InheritOnDenied is set.
	PriorityInheritance bool
	// InheritOnDenied boosts the owner when a revocation request is denied
	// because the section is non-revocable.
	InheritOnDenied bool
	// PriorityCeiling enables ceiling emulation: acquiring a monitor with
	// a configured Ceiling raises the owner to that priority.
	PriorityCeiling bool

	// Race, when non-nil, attaches the dynamic data-race sanitizer: every
	// barriered access is checked against a vector-clock happens-before
	// relation, with access history retracted on rollback so a revoked
	// section can never ground a race report. A nil Race adds no cost: all
	// hooks sit behind a nil check.
	Race *race.Detector

	// Observer, when non-nil, receives every runtime event alongside
	// Tracer (internal/obs.Observer reconstructs causal spans and latency
	// histograms from the stream). A nil Observer adds no multiplexing
	// cost: the tracer is used directly.
	Observer trace.Sink

	// Profiler, when non-nil, attaches the virtual-time profiler
	// (internal/prof): every tick a thread charges is attributed to its
	// current (method, pc) site, with rollback reclassifying the retracted
	// ticks from work to waste and blocking charged against the contended
	// monitor. A nil Profiler adds no cost: all hooks sit behind a nil
	// check, the same contract as Race and Observer.
	Profiler *prof.Profiler

	// OnDeadlock, when non-nil, attaches the wait-for-graph observer:
	// every contended blocking acquisition checks whether the new
	// waits-for edge closes a cycle and, if so, reports it — counted in
	// Stats.DeadlocksDetected, emitted as trace.DeadlockDetected, then
	// passed to the callback with per-edge acquisition sites. Unlike
	// DeadlockDetection the observer never breaks the cycle: the threads
	// stay blocked and the scheduler's all-blocked diagnosis follows. It
	// works in every mode and is the dynamic half of the deadlock
	// cross-validation (rvmrun -deadlock). A nil OnDeadlock adds no cost:
	// the check sits behind a nil test.
	OnDeadlock func(cycle []DeadlockEdge)

	// FIFOMonitorQueues disables the paper's prioritized monitor queues:
	// monitors created by this runtime serve waiters in arrival order.
	// Used by the queue-discipline ablation (the paper implemented
	// prioritized queues "to make the measurements independent of the
	// random order in which threads arrive at a monitor", §4).
	FIFOMonitorQueues bool

	// DisableThinLocks pins every monitor to the inflated
	// prioritized-queue representation; the compact lock word's thin
	// fast path never engages. Used by the lock-word ablation and the
	// inflated-variant micro-benchmarks.
	DisableThinLocks bool

	// Perturb, when non-nil, applies the what-if cost perturbations of the
	// causal profiler (internal/causal): per-site Work scaling, the
	// zero-contention override, and per-monitor revocation disabling. The
	// VM's determinism makes a perturbed re-execution exact, so the clock
	// delta against the baseline is the true virtual speedup. A nil (or
	// empty) Perturb adds no cost: all hooks sit behind nil checks, the
	// same contract as Race, Observer and Profiler.
	Perturb *Perturb

	// Tracer receives runtime events; nil discards them.
	Tracer trace.Sink
}

func (c *Config) fill() {
	if c.CostRead == 0 {
		c.CostRead = 1
	}
	if c.CostWrite == 0 {
		c.CostWrite = 1
	}
	if c.CostLogEntry == 0 {
		c.CostLogEntry = 1
	}
	if c.CostUndoEntry == 0 {
		c.CostUndoEntry = 1
	}
	if c.Tracer == nil {
		c.Tracer = trace.Discard
	}
	if c.Observer != nil {
		if c.Tracer == trace.Discard {
			c.Tracer = c.Observer
		} else {
			c.Tracer = trace.Multi{c.Tracer, c.Observer}
		}
	}
	if c.Sched.Tracer == nil {
		c.Sched.Tracer = c.Tracer
	}
}

// Stats aggregates runtime-wide counters; the evaluation harness reports
// them next to elapsed times.
type Stats struct {
	Inversions         int64         `json:"inversions"`          // priority inversions detected
	RevocationRequests int64         `json:"revocation_requests"` // revocations requested
	RevocationsDenied  int64         `json:"revocations_denied"`  // denied because the section was non-revocable
	Rollbacks          int64         `json:"rollbacks"`           // sections actually rolled back
	Reexecutions       int64         `json:"reexecutions"`        // section retries after rollback
	EntriesLogged      int64         `json:"entries_logged"`      // write-barrier slow paths taken
	EntriesUndone      int64         `json:"entries_undone"`      // locations restored by rollbacks
	WastedTicks        simtime.Ticks `json:"wasted_ticks"`
	PreemptedGrants    int64         `json:"preempted_grants"` // handed-over-but-unentered grants revoked
	DeadlocksDetected  int64         `json:"deadlocks_detected"`
	DeadlocksBroken    int64         `json:"deadlocks_broken"`
	Dependencies       int64         `json:"dependencies"` // §2.2 read-write dependencies observed
	NonRevocableMarks  int64         `json:"non_revocable_marks"`
	ContextSwitches    int64         `json:"context_switches"`
	BarrierFastPaths   int64         `json:"barrier_fast_paths"` // non-logging stores (outside sections or Unmodified)
	StoresDeduped      int64         `json:"stores_deduped"`     // in-section stores skipped by first-write-wins logging
	StaticPreMarks     int64         `json:"static_premarks"`    // monitors pre-marked non-revocable by static analysis
	AllocsLogged       int64         `json:"allocs_logged"`      // whole-allocation undo entries (static elision support)
	RawStores          int64         `json:"raw_stores"`         // statically elided stores executed barrier-free
	ConfinedElisions   int64         `json:"confined_elisions"`  // certified confined monitorenter/exit pairs executed as no-ops

	// Compact lock word (internal/monitor).
	ThinAcquisitions int64 `json:"thin_acquisitions"` // ownership transfers on the thin fast path
	Inflations       int64 `json:"inflations"`        // thin → full-monitor transitions
	Deflations       int64 `json:"deflations"`        // uncontended releases that collapsed back to thin

	// Dynamic race sanitizer (Config.Race != nil).
	RacesDetected         int64 `json:"races_detected"`          // confirmed reports emitted
	RaceReportsRetracted  int64 `json:"race_reports_retracted"`  // pending reports dropped because an endpoint rolled back
	RaceAccessesRetracted int64 `json:"race_accesses_retracted"` // access records retracted by rollbacks
	RaceChecksSkipped     int64 `json:"race_checks_skipped"`     // accesses skipped on certified race-free slots
}

// Runtime hosts a simulated VM instance.
type Runtime struct {
	cfg    Config
	sch    *sched.Scheduler
	hp     *heap.Heap
	spec   *jmm.Table
	tracer trace.Sink

	tasks    map[int]*Task
	monitors []*monitor.Monitor
	objMons  map[*heap.Object]*monitor.Monitor
	waiting  map[*Task]*monitor.Monitor // waits-for edges (deadlock graph)

	stats          Stats
	lastDetectScan simtime.Ticks
	scaleRem       map[Site]int64 // Perturb.Scale per-site remainders

	// noDedup disables first-write-wins undo logging, forcing one log entry
	// per store as in the paper's unoptimized barrier. Test-only: the
	// rollback-equivalence property runs identical programs with and without
	// dedup and asserts the heaps end identical.
	noDedup bool
}

// New creates a runtime with a fresh scheduler and heap.
func New(cfg Config) *Runtime {
	cfg.fill()
	hp := heap.New()
	rt := &Runtime{
		cfg:     cfg,
		sch:     sched.New(cfg.Sched),
		hp:      hp,
		spec:    jmm.NewTable(hp),
		tracer:  cfg.Tracer,
		tasks:   make(map[int]*Task),
		objMons: make(map[*heap.Object]*monitor.Monitor),
		waiting: make(map[*Task]*monitor.Monitor),
	}
	if cfg.Race != nil {
		cfg.Race.Bind(hp, rt.tracer, rt.sch.Now)
	}
	if cfg.Profiler != nil {
		p := cfg.Profiler
		p.SetClock(rt.sch.Now)
		rt.sch.OnSwitchCost = func(d simtime.Ticks) { p.SchedTick("context-switch", d) }
		rt.sch.OnIdle = func(d simtime.Ticks) { p.SchedTick("idle", d) }
	}
	if cfg.Mode == Revocation && (cfg.Detect == DetectPeriodic || cfg.Detect == DetectBoth) {
		period := cfg.DetectPeriod
		if period <= 0 {
			period = rt.sch.Quantum()
		}
		rt.sch.PreDispatch = func(*sched.Thread) {
			if rt.sch.Now()-rt.lastDetectScan >= period {
				rt.lastDetectScan = rt.sch.Now()
				rt.scanForInversions()
			}
		}
	}
	return rt
}

// Heap returns the runtime's heap.
func (rt *Runtime) Heap() *heap.Heap { return rt.hp }

// Scheduler returns the underlying scheduler.
func (rt *Runtime) Scheduler() *sched.Scheduler { return rt.sch }

// Now returns the current virtual time.
func (rt *Runtime) Now() simtime.Ticks { return rt.sch.Now() }

// Config returns the runtime's (filled-in) configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Mode returns the runtime's VM mode.
func (rt *Runtime) Mode() Mode { return rt.cfg.Mode }

// NewMonitor creates a standalone named monitor.
func (rt *Runtime) NewMonitor(name string) *monitor.Monitor {
	m := monitor.New(rt.sch, name)
	m.FIFOQueue = rt.cfg.FIFOMonitorQueues
	if rt.cfg.DisableThinLocks {
		m.DisableThin()
	}
	if p := rt.cfg.Perturb; p != nil && p.NoRevoke[name] {
		// The per-monitor revocation ablation: pinned non-revocable from
		// birth, exactly like a static pre-mark — requests are denied and
		// its sections run without undo logging.
		m.MarkNonRevocable("whatif: revocation disabled")
	}
	rt.monitors = append(rt.monitors, m)
	return m
}

// MonitorFor returns the monitor associated with a heap object, creating it
// on first use — in Java every object can act as a monitor.
func (rt *Runtime) MonitorFor(o *heap.Object) *monitor.Monitor {
	if m, ok := rt.objMons[o]; ok {
		return m
	}
	m := rt.NewMonitor(o.String())
	rt.objMons[o] = m
	return m
}

// Monitors returns every monitor created so far (shared slice).
func (rt *Runtime) Monitors() []*monitor.Monitor { return rt.monitors }

// Spawn creates a simulated thread running body.
func (rt *Runtime) Spawn(name string, prio sched.Priority, body func(*Task)) *Task {
	task := &Task{rt: rt, log: undo.NewLog(64)}
	if rt.cfg.Profiler != nil {
		task.tp = rt.cfg.Profiler.Thread(name)
	}
	task.th = rt.sch.Spawn(name, prio, func(th *sched.Thread) {
		body(task)
		task.finish()
	})
	task.th.Data = task
	rt.tasks[task.th.ID()] = task
	if rt.cfg.Race != nil {
		rt.cfg.Race.ThreadStart(task.th.ID(), name)
	}
	return task
}

// Run drives the scheduler until every thread completes. On error the
// thread goroutines are drained.
func (rt *Runtime) Run() error {
	err := rt.sch.Run()
	if err != nil {
		rt.sch.Drain()
		return err
	}
	return nil
}

// Stats returns a snapshot of the aggregated counters.
func (rt *Runtime) Stats() Stats {
	s := rt.stats
	s.Dependencies = rt.spec.Dependencies()
	s.ContextSwitches = rt.sch.ContextSwitches()
	for _, t := range rt.tasks {
		s.EntriesLogged += t.log.Appended()
		s.EntriesUndone += t.log.Undone()
		s.StoresDeduped += t.log.Deduped()
		s.AllocsLogged += t.log.AllocsLogged()
	}
	for _, m := range rt.monitors {
		s.ThinAcquisitions += m.ThinAcquisitions()
		s.Inflations += m.Inflations()
		s.Deflations += m.Deflations()
	}
	if rt.cfg.Race != nil {
		s.RacesDetected, s.RaceReportsRetracted, s.RaceAccessesRetracted = rt.cfg.Race.Stats()
		s.RaceChecksSkipped = rt.cfg.Race.ChecksSkipped()
	}
	return s
}

// Tasks returns all spawned tasks keyed by thread id.
func (rt *Runtime) Tasks() map[int]*Task { return rt.tasks }

// ---------------------------------------------------------------------------
// Task: one simulated thread plus its revocation state.

// revocation is a pending request delivered at the victim's next yield
// point.
type revocation struct {
	mon       *monitor.Monitor
	monGen    uint64
	requester string
	reason    string // "priority-inversion" or "deadlock"
}

// frame records one Synchronized activation.
type frame struct {
	mon       *monitor.Monitor
	monGen    uint64
	logMark   undo.Mark
	reentrant bool // monitor already held when this frame was pushed
	startCPU  simtime.Ticks
	attempts  int
	// elided marks a what-if frame under Perturb.Uncontended: the monitor
	// was never actually acquired, so exit and rollback must not release
	// it and the revocation stale-guard must not expect ownership.
	elided bool
}

// rollbackSignal unwinds the Go stack from the yield point that delivered a
// revocation to the Synchronized frame being revoked. It never escapes the
// package: every Synchronized recovers it.
type rollbackSignal struct {
	target int // frame index to restart
	reason string
}

// Task is a simulated thread of the runtime.
type Task struct {
	rt  *Runtime
	th  *sched.Thread
	log *undo.Log

	frames    []frame
	spanGen   uint64 // increments when the outermost frame is pushed
	revokeReq *revocation

	// nonRevBelow caches how many frames, from the outermost in, are known
	// to guard non-revocable monitors. When it reaches len(frames) no active
	// section can be a rollback target and stores skip undo logging
	// entirely — the payoff of static pre-marking. Clamped wherever frames
	// are popped, and at Wait's re-acquire (the one point a still-held
	// monitor's non-revocable flag can reset).
	nonRevBelow int

	// retryAttempts carries the attempt counter of a rolled-back frame
	// into its re-execution (set in Synchronized, consumed in enter).
	retryAttempts int

	// Per-task statistics.
	rollbacks    int64
	reexecutions int64

	// lockMethod/lockPC name the bytecode site of the next monitor
	// acquisition for the wait-for-graph observer (set by the interpreter
	// via SetLockSite; empty for Go-level acquisitions).
	lockMethod string
	lockPC     int
	// acqSites records, per currently-held monitor, the site that acquired
	// it — populated only when Config.OnDeadlock is set, so the observer's
	// cycle reports can name every edge's monitorenter.
	acqSites map[*monitor.Monitor]string

	// raceMethod/racePC name the bytecode site of the next barriered access
	// for the race sanitizer (set by the interpreter via SetRaceSite; empty
	// for Go-level API accesses).
	raceMethod string
	racePC     int

	// tp is the task's virtual-time profiler handle (nil when
	// Config.Profiler is nil). The interpreter maintains its call stack
	// and pc via SetProfSite/ProfPush/ProfPopTo; Go-level tasks profile
	// under the thread root alone.
	tp *prof.ThreadProf
}

// Thread returns the underlying scheduler thread.
func (t *Task) Thread() *sched.Thread { return t.th }

// Name returns the thread name.
func (t *Task) Name() string { return t.th.Name() }

// Priority returns the thread's current priority.
func (t *Task) Priority() sched.Priority { return t.th.Priority() }

// Rollbacks returns how many times this task's sections were rolled back.
func (t *Task) Rollbacks() int64 { return t.rollbacks }

// Depth returns the current synchronized-section nesting depth.
func (t *Task) Depth() int { return len(t.frames) }

// InSection reports whether the task is inside any synchronized section.
func (t *Task) InSection() bool { return len(t.frames) > 0 }

// finish runs when the task body returns; it validates cleanliness.
func (t *Task) finish() {
	if len(t.frames) > 0 {
		panic(fmt.Sprintf("core: task %s finished holding %d synchronized sections", t.Name(), len(t.frames)))
	}
	t.rt.spec.DropThread(t.th.ID())
	if t.rt.cfg.Race != nil {
		t.rt.cfg.Race.ThreadEnd(t.th.ID())
	}
}

// step charges cost ticks, passes a yield point, and delivers any pending
// revocation. Every shared-data operation calls it, making each operation a
// yield point exactly as the paper's compiler arranges.
func (t *Task) step(cost simtime.Ticks) {
	if !t.rt.cfg.NoCosts {
		t.th.Advance(cost)
		if t.tp != nil {
			t.tp.Tick(cost)
		}
	}
	t.th.YieldPoint()
	if t.revokeReq != nil {
		t.deliverRevocation()
	}
}

// Step is Work specialized for a single sub-quantum charge. The fused
// execution tier calls it once per original instruction with the
// compile-time-constant per-instruction cost, skipping Work's
// quantum-clamping loop. The caller must guarantee cost <= the scheduler
// quantum (checked once at compile time); under that precondition the
// behavior is identical to Work(cost) — one tick charge, one yield point,
// revocation delivery.
func (t *Task) Step(cost simtime.Ticks) { t.step(cost) }

// Work charges n ticks of thread-local computation (no logging, no
// barriers), passing yield points along the way.
func (t *Task) Work(n simtime.Ticks) {
	if p := t.rt.cfg.Perturb; p != nil && len(p.Scale) > 0 && t.tp != nil {
		scaled, applied := t.rt.scaleWork(t, n)
		if applied {
			if scaled <= 0 {
				// Scaled-away work still passes its yield point, so
				// preemption and revocation delivery keep their sites.
				t.step(0)
				return
			}
			n = scaled
		}
	}
	q := t.rt.sch.Quantum()
	for n > 0 {
		c := n
		if c > q {
			c = q
		}
		t.step(c)
		n -= c
	}
}

// Sleep suspends the task for d virtual ticks.
func (t *Task) Sleep(d simtime.Ticks) {
	t.th.Sleep(d)
	if t.revokeReq != nil {
		t.deliverRevocation()
	}
}

// YieldPoint passes an explicit yield point (method entry, loop back-edge).
func (t *Task) YieldPoint() { t.step(0) }

// ---------------------------------------------------------------------------
// Barriers. In Revocation mode, stores inside a synchronized section take
// the slow path: log the old value and register the location as
// speculative. Reads consult the speculation table to detect the read-write
// dependencies of §2.2.

func (t *Task) spanRef() jmm.SpanRef {
	return jmm.SpanRef{Thread: t.th.ID(), Gen: t.spanGen}
}

// logging reports whether stores must be logged right now: Revocation mode,
// inside a section, and at least one active frame still revocable. When
// every frame's monitor is non-revocable no rollback can target this task,
// so undo entries would never be replayed — the section runs log-free.
func (t *Task) logging() bool {
	if t.rt.cfg.Mode != Revocation || len(t.frames) == 0 {
		return false
	}
	for t.nonRevBelow < len(t.frames) {
		if nr, _ := t.frames[t.nonRevBelow].mon.NonRevocable(); !nr {
			return true
		}
		t.nonRevBelow++
	}
	return false
}

// clampNonRevBelow re-establishes nonRevBelow ≤ len(frames) after frames
// are popped.
func (t *Task) clampNonRevBelow() {
	if t.nonRevBelow > len(t.frames) {
		t.nonRevBelow = len(t.frames)
	}
}

// sectionMark returns the innermost active frame's log mark — the
// first-write-wins boundary: a location already logged at or after it needs
// no new undo entry for any rollback this task can still perform.
func (t *Task) sectionMark() undo.Mark {
	return t.frames[len(t.frames)-1].logMark
}

// chargeLogEntry charges the write-barrier slow path (one appended undo
// entry); deduped stores skip it, which is the §3.1.2 cost the dedup saves.
func (t *Task) chargeLogEntry() {
	if !t.rt.cfg.NoCosts {
		t.th.Advance(t.rt.cfg.CostLogEntry)
		if t.tp != nil {
			t.tp.Tick(t.rt.cfg.CostLogEntry)
		}
	}
}

// logObjectStore logs the pre-store value of (o, idx), deduped unless the
// runtime's test-only noDedup knob is set; it reports whether an entry was
// appended.
func (t *Task) logObjectStore(o *heap.Object, idx int) bool {
	if t.rt.noDedup {
		t.log.LogObject(o, idx, o.Get(idx))
		return true
	}
	return t.log.LogObjectOnce(o, idx, o.Get(idx), t.sectionMark())
}

// logArrayStore is logObjectStore for array elements.
func (t *Task) logArrayStore(a *heap.Array, idx int) bool {
	if t.rt.noDedup {
		t.log.LogArray(a, idx, a.Get(idx))
		return true
	}
	return t.log.LogArrayOnce(a, idx, a.Get(idx), t.sectionMark())
}

// logStaticStore is logObjectStore for static variables.
func (t *Task) logStaticStore(idx int) bool {
	if t.rt.noDedup {
		t.log.LogStatic(idx, t.rt.hp.GetStatic(idx))
		return true
	}
	return t.log.LogStaticOnce(t.rt.hp, idx, t.rt.hp.GetStatic(idx), t.sectionMark())
}

// WriteField stores v into field idx of o through the write barrier.
func (t *Task) WriteField(o *heap.Object, idx int, v heap.Word) {
	t.step(t.rt.cfg.CostWrite)
	if t.logging() {
		if t.logObjectStore(o, idx) {
			t.chargeLogEntry()
			if t.rt.cfg.TrackDependencies {
				t.rt.spec.RegisterObject(o, idx, t.spanRef())
			}
		}
	} else {
		t.rt.stats.BarrierFastPaths++
	}
	o.Set(idx, v)
	if o.IsVolatile(idx) {
		t.rt.tracer.Emit(trace.Event{At: t.rt.sch.Now(), Kind: trace.VolatileWrite, Thread: t.Name(), Object: o.String(), Detail: o.FieldName(idx)})
		if d := t.rt.cfg.Race; d != nil {
			d.VolatileWrite(t.th.ID(), race.Slot{Kind: heap.KindObject, ID: o.ID(), Idx: idx}, t.raceSite())
		}
	} else if d := t.rt.cfg.Race; d != nil {
		d.Write(t.th.ID(), race.Slot{Kind: heap.KindObject, ID: o.ID(), Idx: idx}, t.raceSite())
	}
}

// ReadField loads field idx of o through the read barrier.
func (t *Task) ReadField(o *heap.Object, idx int) heap.Word {
	t.step(t.rt.cfg.CostRead)
	if t.rt.cfg.TrackDependencies && t.rt.spec.HasForeign(t.th.ID()) {
		t.dependencyHit(t.rt.spec.CheckReadObject(o, idx, t.th.ID()))
	}
	if o.IsVolatile(idx) {
		t.rt.tracer.Emit(trace.Event{At: t.rt.sch.Now(), Kind: trace.VolatileRead, Thread: t.Name(), Object: o.String(), Detail: o.FieldName(idx)})
		if d := t.rt.cfg.Race; d != nil {
			d.VolatileRead(t.th.ID(), race.Slot{Kind: heap.KindObject, ID: o.ID(), Idx: idx}, t.raceSite())
		}
	} else if d := t.rt.cfg.Race; d != nil {
		d.Read(t.th.ID(), race.Slot{Kind: heap.KindObject, ID: o.ID(), Idx: idx}, t.raceSite())
	}
	return o.Get(idx)
}

// WriteElem stores v into element idx of a through the write barrier.
func (t *Task) WriteElem(a *heap.Array, idx int, v heap.Word) {
	t.step(t.rt.cfg.CostWrite)
	if t.logging() {
		if t.logArrayStore(a, idx) {
			t.chargeLogEntry()
			if t.rt.cfg.TrackDependencies {
				t.rt.spec.RegisterArray(a, idx, t.spanRef())
			}
		}
	} else {
		t.rt.stats.BarrierFastPaths++
	}
	a.Set(idx, v)
	if d := t.rt.cfg.Race; d != nil {
		d.Write(t.th.ID(), race.Slot{Kind: heap.KindArray, ID: a.ID(), Idx: idx}, t.raceSite())
	}
}

// ReadElem loads element idx of a through the read barrier.
func (t *Task) ReadElem(a *heap.Array, idx int) heap.Word {
	t.step(t.rt.cfg.CostRead)
	if t.rt.cfg.TrackDependencies && t.rt.spec.HasForeign(t.th.ID()) {
		t.dependencyHit(t.rt.spec.CheckReadArray(a, idx, t.th.ID()))
	}
	if d := t.rt.cfg.Race; d != nil {
		d.Read(t.th.ID(), race.Slot{Kind: heap.KindArray, ID: a.ID(), Idx: idx}, t.raceSite())
	}
	return a.Get(idx)
}

// WriteStatic stores v into static offset idx through the write barrier.
func (t *Task) WriteStatic(idx int, v heap.Word) {
	t.step(t.rt.cfg.CostWrite)
	if t.logging() {
		if t.logStaticStore(idx) {
			t.chargeLogEntry()
			if t.rt.cfg.TrackDependencies {
				t.rt.spec.RegisterStatic(idx, t.spanRef())
			}
		}
	} else {
		t.rt.stats.BarrierFastPaths++
	}
	t.rt.hp.SetStatic(idx, v)
	if t.rt.hp.IsStaticVolatile(idx) {
		t.rt.tracer.Emit(trace.Event{At: t.rt.sch.Now(), Kind: trace.VolatileWrite, Thread: t.Name(), Object: t.rt.hp.StaticName(idx)})
		if d := t.rt.cfg.Race; d != nil {
			d.VolatileWrite(t.th.ID(), race.Slot{Kind: heap.KindStatic, Idx: idx}, t.raceSite())
		}
	} else if d := t.rt.cfg.Race; d != nil {
		d.Write(t.th.ID(), race.Slot{Kind: heap.KindStatic, Idx: idx}, t.raceSite())
	}
}

// ReadStatic loads static offset idx through the read barrier.
func (t *Task) ReadStatic(idx int) heap.Word {
	t.step(t.rt.cfg.CostRead)
	if t.rt.cfg.TrackDependencies && t.rt.spec.HasForeign(t.th.ID()) {
		t.dependencyHit(t.rt.spec.CheckReadStatic(idx, t.th.ID()))
	}
	if t.rt.hp.IsStaticVolatile(idx) {
		t.rt.tracer.Emit(trace.Event{At: t.rt.sch.Now(), Kind: trace.VolatileRead, Thread: t.Name(), Object: t.rt.hp.StaticName(idx)})
		if d := t.rt.cfg.Race; d != nil {
			d.VolatileRead(t.th.ID(), race.Slot{Kind: heap.KindStatic, Idx: idx}, t.raceSite())
		}
	} else if d := t.rt.cfg.Race; d != nil {
		d.Read(t.th.ID(), race.Slot{Kind: heap.KindStatic, Idx: idx}, t.raceSite())
	}
	return t.rt.hp.GetStatic(idx)
}

// dependencyHit handles the result of a read-barrier location check: on a
// hit, the writer's active monitors become non-revocable (§2.2).
func (t *Task) dependencyHit(ref jmm.SpanRef, hit bool) {
	if !hit {
		return
	}
	writer, ok := t.rt.tasks[ref.Thread]
	if !ok || writer.spanGen != ref.Gen || len(writer.frames) == 0 {
		return // stale entry: the span already committed
	}
	writer.markNonRevocable(fmt.Sprintf("read-write dependency (reader %s)", t.Name()))
}

// markNonRevocable marks every active frame's monitor span non-revocable.
// Marking propagates to all enclosing monitors, as the paper requires for
// native methods and nested writes (§2.2 and footnote 1).
func (t *Task) markNonRevocable(reason string) {
	marked := false
	for i := range t.frames {
		f := &t.frames[i]
		if f.reentrant {
			continue
		}
		if nr, _ := f.mon.NonRevocable(); !nr {
			f.mon.MarkNonRevocable(reason)
			marked = true
			t.rt.tracer.Emit(trace.Event{At: t.rt.sch.Now(), Kind: trace.NonRevocable, Thread: t.Name(), Object: f.mon.Name(), Detail: reason})
		}
	}
	if marked {
		t.rt.stats.NonRevocableMarks++
	}
}

// Native runs f as a native method: its effects cannot be revoked, so all
// enclosing monitors become non-revocable first (§2.2).
func (t *Task) Native(name string, f func()) {
	if len(t.frames) > 0 {
		t.markNonRevocable("native method " + name)
	}
	t.rt.tracer.Emit(trace.Event{At: t.rt.sch.Now(), Kind: trace.NativeCall, Thread: t.Name(), Detail: name})
	if f != nil {
		f()
	}
}

// ---------------------------------------------------------------------------
// Synchronized sections.

// Synchronized executes body holding m, with the revocation semantics of
// the runtime's mode. Re-entry by the owner is permitted (Java reentrancy);
// rollback always restarts from the *first* acquisition of the revoked
// monitor.
func (t *Task) Synchronized(m *monitor.Monitor, body func()) {
	for {
		t.enter(m)
		sig := t.runBody(body)
		if sig == nil {
			t.commitTop(m)
			return
		}
		// A revocation unwound the stack to this frame. The undo replay
		// and monitor releases already happened at the yield point that
		// delivered it; only bookkeeping remains.
		myIdx := len(t.frames) - 1
		f := t.frames[myIdx]
		t.frames = t.frames[:myIdx]
		t.clampNonRevBelow()
		if sig.target != myIdx {
			panic(*sig) // rollback target is an enclosing section
		}
		t.reexecutions++
		t.rt.stats.Reexecutions++
		t.rt.tracer.Emit(trace.Event{At: t.rt.sch.Now(), Kind: trace.Reexecution, Thread: t.Name(), Object: m.Name(),
			N: int64(f.attempts + 1), Detail: fmt.Sprintf("attempt=%d", f.attempts+1)})
		if sig.reason == "deadlock" {
			backoff := t.rt.cfg.DeadlockBackoff
			if backoff <= 0 {
				backoff = t.rt.sch.Quantum()
			}
			t.Sleep(backoff * simtime.Ticks(f.attempts))
		}
		t.retryAttempts = f.attempts // carried into the next enter's frame
	}
}

// runBody executes the section body, converting a rollbackSignal panic into
// a return value. All other panics propagate.
func (t *Task) runBody(body func()) (sig *rollbackSignal) {
	defer func() {
		if r := recover(); r != nil {
			if s, ok := r.(rollbackSignal); ok {
				sig = &s
				return
			}
			panic(r)
		}
	}()
	body()
	return nil
}

// enter acquires m, pushing a frame. It implements the paper's detection
// algorithm: a contended acquisition compares the acquirer's priority to
// the priority deposited in the monitor and requests revocation when the
// owner's is lower (§4).
func (t *Task) enter(m *monitor.Monitor) {
	rt := t.rt
	t.YieldPoint() // method-entry yield point
	if p := rt.cfg.Perturb; p != nil && p.Uncontended[m.Name()] {
		t.enterElided(m)
		return
	}
	for {
		if m.TryEnter(t.th) {
			break
		}
		rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.MonitorEnter, Thread: t.Name(), Object: m.Name(), Detail: "contended"})
		owner := m.Owner()
		if owner == nil {
			// Free, but a higher-priority thread is queued ahead of us
			// (the paper's prioritized admission): just wait our turn.
			rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.MonitorBlocked, Thread: t.Name(), Object: m.Name(), Detail: "queued"})
			rt.waiting[t] = m
			blockedAt := rt.sch.Now()
			kind := m.BlockOn(t.th)
			if t.tp != nil {
				t.tp.BlockTick(rt.sch.Now()-blockedAt, m.Name())
			}
			delete(rt.waiting, t)
			if kind == sched.WakeInterrupt && t.revokeReq != nil {
				t.deliverRevocation()
			}
			continue
		}
		ownerTask, _ := owner.Data.(*Task)
		if t.th.Priority() > m.OwnerPriority() {
			rt.stats.Inversions++
			rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.InversionDetected, Thread: t.Name(), Object: m.Name(), Other: owner.Name(),
				Detail: fmt.Sprintf("owner=%s prio=%d<%d", owner.Name(), m.OwnerPriority(), t.th.Priority())})
			if rt.cfg.Mode == Revocation && (rt.cfg.Detect == DetectOnAcquire || rt.cfg.Detect == DetectBoth) && ownerTask != nil {
				if !rt.requestRevocation(ownerTask, m, "priority-inversion", t.Name()) && rt.cfg.InheritOnDenied {
					rt.boostChain(ownerTask, t.th.Priority())
				}
			}
		}
		if rt.cfg.PriorityInheritance && ownerTask != nil && owner.Priority() < t.th.Priority() {
			rt.boostChain(ownerTask, t.th.Priority())
		}
		rt.waiting[t] = m
		if rt.cfg.OnDeadlock != nil {
			rt.observeWFG(t, m)
		}
		if rt.cfg.DeadlockDetection && rt.cfg.Mode == Revocation {
			rt.resolveDeadlock(t, m)
			if t.revokeReq != nil { // self-victim
				delete(rt.waiting, t)
				t.deliverRevocation()
			}
		}
		rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.MonitorBlocked, Thread: t.Name(), Object: m.Name(), Other: owner.Name()})
		blockedAt := rt.sch.Now()
		kind := m.BlockOn(t.th)
		if t.tp != nil {
			t.tp.BlockTick(rt.sch.Now()-blockedAt, m.Name())
		}
		delete(rt.waiting, t)
		if kind == sched.WakeGranted {
			// A revocation may have targeted our still-pending grant: a
			// higher-priority thread arrived while we were queued and
			// granted but not yet dispatched. Release untouched, re-queue.
			if req := t.revokeReq; req != nil && req.mon == m && req.monGen == m.Gen() && t.firstFrameOf(m) < 0 {
				t.revokeReq = nil
				rt.stats.PreemptedGrants++
				rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.Rollback, Thread: t.Name(), Object: m.Name(), Other: req.requester,
					Detail: fmt.Sprintf("reason=%s undone=0 (pending grant)", req.reason)})
				m.ForceRelease(t.th)
				continue
			}
			break
		}
		if kind == sched.WakeInterrupt {
			// This blocked thread is itself a revocation victim.
			if t.revokeReq != nil {
				t.deliverRevocation()
			}
			continue
		}
	}
	reentrant := m.EntryCount() > 1
	if !reentrant && len(t.frames) == 0 {
		t.spanGen++
	}
	if rt.cfg.PriorityCeiling && m.Ceiling > t.th.Priority() {
		rt.sch.SetPriority(t.th, m.Ceiling)
	}
	t.frames = append(t.frames, frame{
		mon:       m,
		monGen:    m.Gen(),
		logMark:   t.log.Mark(),
		reentrant: reentrant,
		startCPU:  t.th.CPU(),
		attempts:  t.retryAttempts,
	})
	t.retryAttempts = 0
	if rt.cfg.OnDeadlock != nil {
		if t.acqSites == nil {
			t.acqSites = make(map[*monitor.Monitor]string)
		}
		t.acqSites[m] = t.lockSite()
	}
	if d := rt.cfg.Race; d != nil {
		if !reentrant {
			d.Acquire(t.th.ID(), m)
		}
		d.SectionEnter(t.th.ID()) // mark pushed for every frame, reentrant included
	}
	if t.tp != nil {
		t.tp.SectionEnter()
	}
	// N carries the undo-log depth so trace consumers (the Perfetto counter
	// tracks) can plot speculative state without replaying barrier logic.
	rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.MonitorAcquired, Thread: t.Name(), Object: m.Name(), N: int64(t.log.Len()), Detail: fmt.Sprintf("depth=%d", len(t.frames))})
}

// enterElided pushes a what-if frame for a monitor running under the
// zero-contention override (Perturb.Uncontended): the section executes
// with acquisition elided — no queueing, no blocking, no ownership, no
// revocation on this monitor — while write barriers, undo logging and
// every tick charge inside the section stay exactly as in the baseline.
// The re-execution therefore answers "how many ticks does making this
// monitor uncontended buy" and nothing else.
func (t *Task) enterElided(m *monitor.Monitor) {
	rt := t.rt
	reentrant := false
	for _, f := range t.frames {
		if f.mon == m {
			reentrant = true
			break
		}
	}
	if !reentrant && len(t.frames) == 0 {
		t.spanGen++
	}
	t.frames = append(t.frames, frame{
		mon:       m,
		monGen:    m.Gen(),
		logMark:   t.log.Mark(),
		reentrant: reentrant,
		startCPU:  t.th.CPU(),
		attempts:  t.retryAttempts,
		elided:    true,
	})
	t.retryAttempts = 0
	if d := rt.cfg.Race; d != nil {
		if !reentrant {
			d.Acquire(t.th.ID(), m)
		}
		d.SectionEnter(t.th.ID())
	}
	if t.tp != nil {
		t.tp.SectionEnter()
	}
	rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.MonitorAcquired, Thread: t.Name(), Object: m.Name(), N: int64(t.log.Len()), Detail: fmt.Sprintf("depth=%d elided", len(t.frames))})
}

// commitTop exits the top frame normally. Updates become permanent only
// when the outermost frame commits; until then an enclosing rollback could
// still revoke them (Figure 2's scenario, guarded by the §2.2 marking).
func (t *Task) commitTop(m *monitor.Monitor) {
	rt := t.rt
	f := t.frames[len(t.frames)-1]
	if f.mon != m {
		panic(fmt.Sprintf("core: commit of %s but top frame holds %s", m.Name(), f.mon.Name()))
	}
	t.frames = t.frames[:len(t.frames)-1]
	t.clampNonRevBelow()
	if len(t.frames) == 0 && t.log.Len() > 0 {
		if rt.cfg.TrackDependencies {
			id := t.th.ID()
			t.log.Range(0, func(e undo.Entry) { rt.spec.Unregister(e.Loc(), id) })
		}
		t.log.Truncate(0)
	}
	if f.elided {
		// A what-if frame owns nothing: no monitor to exit, no boost to
		// drop. Everything else commits as usual.
		if d := rt.cfg.Race; d != nil {
			if !f.reentrant {
				d.Release(t.th.ID(), m)
			}
			d.SectionCommit(t.th.ID())
		}
		if t.tp != nil {
			t.tp.SectionCommit()
		}
		rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.MonitorExit, Thread: t.Name(), Object: m.Name(), N: int64(t.log.Len()), Detail: "elided"})
		t.YieldPoint()
		return
	}
	fully := m.Exit(t.th)
	if fully && (rt.cfg.PriorityCeiling || rt.cfg.PriorityInheritance) {
		rt.unboost(t)
	}
	if d := rt.cfg.Race; d != nil {
		// A reentrant exit is not a real release: no synchronizes-with edge
		// until ownership actually drops.
		if fully {
			d.Release(t.th.ID(), m)
		}
		d.SectionCommit(t.th.ID())
	}
	if t.tp != nil {
		t.tp.SectionCommit()
	}
	rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.MonitorExit, Thread: t.Name(), Object: m.Name(), N: int64(t.log.Len())})
	t.YieldPoint()
}

// ---------------------------------------------------------------------------
// Revocation.

// requestRevocation asks victim to roll back its section guarding m. It
// returns false when the section is non-revocable (§2.2) or the victim no
// longer holds m. The caller still blocks on the monitor's prioritized
// queue; the rollback hands the monitor over when it happens.
func (rt *Runtime) requestRevocation(victim *Task, m *monitor.Monitor, reason, requester string) bool {
	idx := victim.firstFrameOf(m)
	if idx < 0 {
		// The victim owns m through a direct handoff it has not yet
		// executed (granted while queued, not yet dispatched). The grant
		// itself is revoked: once dispatched, the victim releases m
		// untouched and re-queues — trivially "as if it never executed
		// the section".
		if m.Owner() != victim.th {
			return false
		}
		if victim.revokeReq != nil && victim.firstFrameOf(victim.revokeReq.mon) >= 0 {
			return true // an enclosing rollback will release m anyway
		}
		victim.revokeReq = &revocation{mon: m, monGen: m.Gen(), requester: requester, reason: reason}
		rt.stats.RevocationRequests++
		rt.sch.Expedite(victim.th)
		rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.RevokeRequested, Thread: victim.Name(), Object: m.Name(),
			Other: requester, Detail: fmt.Sprintf("reason=%s requester=%s pending-grant", reason, requester)})
		return true
	}
	if nr, why := m.NonRevocable(); nr {
		rt.stats.RevocationsDenied++
		rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.RevokeDenied, Thread: victim.Name(), Object: m.Name(), Detail: why})
		return false
	}
	// Any frame at or above the target marked non-revocable has already
	// propagated to the target's monitor, so the check above suffices.
	req := &revocation{mon: m, monGen: m.Gen(), requester: requester, reason: reason}
	if victim.revokeReq != nil {
		// Keep the outermost target: rolling back the outer section
		// subsumes the inner one.
		cur := victim.firstFrameOf(victim.revokeReq.mon)
		if cur >= 0 && cur <= idx {
			return true
		}
	}
	victim.revokeReq = req
	rt.stats.RevocationRequests++
	rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.RevokeRequested, Thread: victim.Name(), Object: m.Name(),
		Other: requester, Detail: fmt.Sprintf("reason=%s requester=%s", reason, requester)})
	// A blocked or sleeping victim cannot reach a yield point on its own:
	// interrupt it so the request is delivered promptly.
	switch victim.th.State() {
	case sched.StateBlocked:
		rt.sch.Unblock(victim.th, sched.WakeInterrupt)
	case sched.StateSleeping:
		rt.sch.WakeSleeper(victim.th, sched.WakeInterrupt)
	}
	// "The scheduler initiates a context-switch and triggers rollback of
	// the low priority thread at the next yield point" (§4): dispatch the
	// victim next so the rollback happens promptly instead of after a full
	// round-robin rotation.
	rt.sch.Expedite(victim.th)
	return true
}

// firstFrameOf returns the index of the first (outermost) frame holding m,
// or -1.
func (t *Task) firstFrameOf(m *monitor.Monitor) int {
	for i, f := range t.frames {
		if f.mon == m && !f.reentrant {
			return i
		}
	}
	return -1
}

// deliverRevocation performs the rollback on the victim's own stack, at a
// yield point. Matching the paper (§3.1.2), the undo log is replayed
// *before* any monitor is released, so partial results never become visible
// to other threads; the whole sequence runs without yield points, so it is
// atomic in virtual time. It finishes by panicking with a rollbackSignal
// that unwinds to the target Synchronized frame.
func (t *Task) deliverRevocation() {
	rt := t.rt
	req := t.revokeReq
	t.revokeReq = nil
	if req == nil {
		return
	}
	idx := t.firstFrameOf(req.mon)
	if idx < 0 || t.frames[idx].monGen != req.monGen {
		return // stale: the section already committed
	}
	if nr, _ := req.mon.NonRevocable(); nr {
		rt.stats.RevocationsDenied++
		return // became non-revocable after the request
	}
	// Every monitor in the doomed span must actually be owned; a frame
	// whose monitor was released by Object.wait cannot be revoked (its
	// enclosing spans were marked non-revocable, so a valid request can
	// never reach this state — guard against stale ones).
	for i := idx; i < len(t.frames); i++ {
		if !t.frames[i].reentrant && !t.frames[i].elided && !t.frames[i].mon.HeldBy(t.th) {
			return
		}
	}
	delete(rt.waiting, t)

	target := t.frames[idx]
	// 1. Revert every update performed since the target acquisition.
	mark := target.logMark
	if rt.cfg.TrackDependencies {
		id := t.th.ID()
		t.log.Range(mark, func(e undo.Entry) { rt.spec.Unregister(e.Loc(), id) })
	}
	undone := t.log.RollbackTo(mark, rt.hp)
	if !rt.cfg.NoCosts && undone > 0 {
		t.th.Advance(simtime.Ticks(undone) * rt.cfg.CostUndoEntry)
		if t.tp != nil {
			// The undo replay itself is charged before the wasted-CPU delta
			// below is computed, so journaling it here keeps the profiler's
			// waste dimension identical to Stats.WastedTicks.
			t.tp.Tick(simtime.Ticks(undone) * rt.cfg.CostUndoEntry)
		}
	}
	// 2. Release the monitors acquired by the doomed span, innermost
	// first. Reentrant frames carry no ownership of their own.
	for i := len(t.frames) - 1; i >= idx; i-- {
		f := t.frames[i]
		if f.reentrant || f.elided {
			continue // no ownership of its own to release
		}
		f.mon.ForceRelease(t.th)
		if rt.cfg.PriorityCeiling || rt.cfg.PriorityInheritance {
			rt.unboost(t)
		}
	}
	// Retract the aborted attempt's access history in step with the undo
	// replay: rolled-back accesses never ground a race report. ForceRelease
	// deliberately published no release clock — JMM-wise the aborted section
	// never happened, so there is no synchronizes-with edge here.
	if d := rt.cfg.Race; d != nil {
		d.SectionRollback(t.th.ID(), idx)
	}
	if t.tp != nil {
		t.tp.SectionRollback(idx)
	}
	wasted := t.th.CPU() - target.startCPU
	t.rollbacks++
	rt.stats.Rollbacks++
	rt.stats.WastedTicks += wasted
	rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.Rollback, Thread: t.Name(), Object: req.mon.Name(),
		Other: req.requester, N: int64(wasted),
		Detail: fmt.Sprintf("reason=%s undone=%d requester=%s", req.reason, undone, req.requester)})
	// 3. Transfer control back to the start of the section. frames are
	// popped by the unwinding Synchronized activations; record the attempt
	// count so retries can back off.
	t.frames[idx].attempts = target.attempts + 1
	panic(rollbackSignal{target: idx, reason: req.reason})
}

// ---------------------------------------------------------------------------
// Wait / notify (§2.2).

// Wait performs Object.wait on m. In a non-nested monitor the rollback
// horizon moves to the wait (footnote 2: releasing the monitor publishes
// the prefix); in a nested monitor all enclosing monitors become
// non-revocable, since revoking the wait would un-deliver a notification.
func (t *Task) Wait(m *monitor.Monitor) {
	if p := t.rt.cfg.Perturb; p != nil && p.Uncontended[m.Name()] {
		panic(fmt.Sprintf("core: whatif: Wait on %s, which runs under the zero-contention override — wait/notify needs real monitor ownership, so Perturb.Uncontended cannot apply to monitors used with Object.wait", m.Name()))
	}
	idx := t.firstFrameOf(m)
	if idx < 0 {
		panic(fmt.Sprintf("core: Wait on %s not owned by %s", m.Name(), t.Name()))
	}
	rt := t.rt
	t.YieldPoint() // deliver any pending revocation while still fully owning
	if len(t.frames) > 1 || t.frames[len(t.frames)-1].reentrant {
		t.markNonRevocable("wait in nested monitor")
	} else {
		// Non-nested: the monitor is about to be released, so the log
		// prefix becomes permanent.
		if t.log.Len() > 0 {
			if rt.cfg.TrackDependencies {
				id := t.th.ID()
				t.log.Range(0, func(e undo.Entry) { rt.spec.Unregister(e.Loc(), id) })
			}
			t.log.Truncate(0)
		}
	}
	if d := rt.cfg.Race; d != nil {
		// Whichever branch ran, no access made so far can be rolled back
		// anymore; and releasing m is a real release edge.
		d.WaitTruncate(t.th.ID())
		d.Release(t.th.ID(), m)
	}
	if t.tp != nil {
		t.tp.WaitTruncate()
	}
	rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.WaitStart, Thread: t.Name(), Object: m.Name()})
	waitedAt := rt.sch.Now()
	m.Wait(t.th, func() {
		if t.revokeReq != nil {
			t.deliverRevocation()
		}
	})
	if t.tp != nil {
		t.tp.BlockTick(rt.sch.Now()-waitedAt, m.Name())
	}
	// Re-acquired: the frame now covers a fresh ownership span. The paper
	// limits rollback to the wait point (footnote 2: "a potential rollback
	// will therefore not reach beyond the point when wait was called");
	// control cannot be transferred back into the middle of a section
	// whose pre-wait prefix is already committed, so the post-wait span
	// is conservatively made non-revocable instead — strictly fewer
	// revocations than the paper allows, never an unsound one (documented
	// as a substitution in DESIGN.md).
	if len(t.frames) == 1 && !t.frames[idx].reentrant {
		m.MarkNonRevocable("resume point after wait")
	}
	// The released-and-reacquired monitor span restarted clean, so any
	// cached non-revocability at or above this frame is stale.
	if t.nonRevBelow > idx {
		t.nonRevBelow = idx
	}
	f := &t.frames[idx]
	f.monGen = m.Gen()
	f.logMark = t.log.Mark()
	if d := rt.cfg.Race; d != nil {
		d.Acquire(t.th.ID(), m) // re-acquire joins the notifier's release
	}
	rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.WaitEnd, Thread: t.Name(), Object: m.Name()})
	if t.revokeReq != nil {
		t.deliverRevocation()
	}
}

// Notify wakes one waiter of m. Notifications are revocable: the JLS
// permits spurious wake-ups, so a rolled-back notify is indistinguishable
// from one (§2.2).
func (t *Task) Notify(m *monitor.Monitor) {
	if p := t.rt.cfg.Perturb; p != nil && p.Uncontended[m.Name()] {
		panic(fmt.Sprintf("core: whatif: Notify on %s, which runs under the zero-contention override — wait/notify needs real monitor ownership, so Perturb.Uncontended cannot apply to monitors used with Object.wait", m.Name()))
	}
	t.rt.tracer.Emit(trace.Event{At: t.rt.sch.Now(), Kind: trace.Notify, Thread: t.Name(), Object: m.Name()})
	m.Notify(t.th)
}

// NotifyAll wakes all waiters of m.
func (t *Task) NotifyAll(m *monitor.Monitor) {
	if p := t.rt.cfg.Perturb; p != nil && p.Uncontended[m.Name()] {
		panic(fmt.Sprintf("core: whatif: NotifyAll on %s, which runs under the zero-contention override — wait/notify needs real monitor ownership, so Perturb.Uncontended cannot apply to monitors used with Object.wait", m.Name()))
	}
	t.rt.tracer.Emit(trace.Event{At: t.rt.sch.Now(), Kind: trace.Notify, Thread: t.Name(), Object: m.Name(), Detail: "all"})
	m.NotifyAll(t.th)
}

// ---------------------------------------------------------------------------
// Deadlock detection & resolution.

// resolveDeadlock checks whether t blocking on m closes a waits-for cycle
// and, if so, revokes the best victim. Called with rt.waiting[t] = m
// already recorded.
func (rt *Runtime) resolveDeadlock(t *Task, m *monitor.Monitor) {
	cycle := rt.findCycle(t, m)
	if cycle == nil {
		return
	}
	rt.stats.DeadlocksDetected++
	names := make([]string, len(cycle))
	for i, c := range cycle {
		names[i] = fmt.Sprintf("%s->%s", c.task.Name(), c.holds.Name())
	}
	rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.DeadlockDetected, Thread: t.Name(), Detail: fmt.Sprintf("%v", names)})

	victim := rt.chooseVictim(cycle, t)
	if victim == nil {
		rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.RevokeDenied, Thread: t.Name(), Detail: "deadlock: no revocable victim"})
		return
	}
	if rt.requestRevocation(victim.task, victim.holds, "deadlock", t.Name()) {
		rt.stats.DeadlocksBroken++
		rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.DeadlockBroken, Thread: victim.task.Name(), Object: victim.holds.Name()})
	}
}

// cycleEdge pairs a cycle member with the monitor it holds that its
// predecessor in the cycle wants.
type cycleEdge struct {
	task  *Task
	holds *monitor.Monitor
}

// DeadlockEdge is one member of a wait-for-graph cycle reported to the
// Config.OnDeadlock observer: Task holds Holds (acquired at HoldSite, a
// "method@pc" bytecode site) and is blocked trying to acquire WaitsFor at
// WaitSite.
type DeadlockEdge struct {
	Task     string
	Priority int
	Holds    string
	HoldSite string
	WaitsFor string
	WaitSite string
}

// lockSite renders the stamped bytecode site of the task's current monitor
// operation for cycle reports.
func (t *Task) lockSite() string {
	if t.lockMethod == "" {
		return "?"
	}
	return fmt.Sprintf("%s@%d", t.lockMethod, t.lockPC)
}

// observeWFG checks whether t blocking on m closes a waits-for cycle and,
// if so, reports it to the Config.OnDeadlock observer. Unlike
// resolveDeadlock it never picks a victim: the cycle is rendered with
// per-edge acquisition sites and left intact, so the run ends in the
// scheduler's all-blocked diagnosis. Called with rt.waiting[t] = m already
// recorded.
func (rt *Runtime) observeWFG(t *Task, m *monitor.Monitor) {
	cycle := rt.findCycle(t, m)
	if cycle == nil {
		return
	}
	rt.stats.DeadlocksDetected++
	names := make([]string, len(cycle))
	for i, c := range cycle {
		names[i] = fmt.Sprintf("%s->%s", c.task.Name(), c.holds.Name())
	}
	rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.DeadlockDetected, Thread: t.Name(), Detail: fmt.Sprintf("%v", names)})

	// cycle[i].task holds cycle[i].holds and waits for cycle[i+1].holds;
	// the last member is t itself, closing the ring on cycle[0].holds = m.
	edges := make([]DeadlockEdge, len(cycle))
	for i, c := range cycle {
		waits := cycle[(i+1)%len(cycle)].holds
		hold := c.task.acqSites[c.holds]
		if hold == "" {
			hold = "?"
		}
		edges[i] = DeadlockEdge{
			Task:     c.task.Name(),
			Priority: int(c.task.Priority()),
			Holds:    c.holds.Name(),
			HoldSite: hold,
			WaitsFor: waits.Name(),
			WaitSite: c.task.lockSite(),
		}
	}
	rt.cfg.OnDeadlock(edges)
}

// findCycle walks the waits-for chain starting at t blocked on m. It
// returns the cycle members (each with the monitor to revoke to free its
// predecessor), or nil when no cycle exists.
func (rt *Runtime) findCycle(t *Task, m *monitor.Monitor) []cycleEdge {
	var cycle []cycleEdge
	cur := m
	seen := map[*Task]bool{t: true}
	for {
		owner := cur.Owner()
		if owner == nil {
			return nil
		}
		ownerTask, ok := owner.Data.(*Task)
		if !ok {
			return nil
		}
		cycle = append(cycle, cycleEdge{task: ownerTask, holds: cur})
		if ownerTask == t {
			return cycle
		}
		if seen[ownerTask] {
			return nil // cycle not involving t; its members will find it
		}
		seen[ownerTask] = true
		next, waiting := rt.waiting[ownerTask]
		if !waiting || ownerTask.th.State() != sched.StateBlocked {
			return nil
		}
		cur = next
	}
}

// chooseVictim picks the cycle member to revoke: revocable sections only,
// lowest priority first, then fewest prior rollbacks (the livelock guard),
// then not the requester, then lowest thread id — a deterministic total
// order.
func (rt *Runtime) chooseVictim(cycle []cycleEdge, requester *Task) *cycleEdge {
	var best *cycleEdge
	for i := range cycle {
		c := &cycle[i]
		if nr, _ := c.holds.NonRevocable(); nr {
			continue
		}
		if idx := c.task.firstFrameOf(c.holds); idx < 0 {
			continue
		}
		if best == nil || victimLess(c, best, requester) {
			best = c
		}
	}
	return best
}

// victimLess reports whether a is a better victim than b.
func victimLess(a, b *cycleEdge, requester *Task) bool {
	if a.task.Priority() != b.task.Priority() {
		return a.task.Priority() < b.task.Priority()
	}
	if a.task.rollbacks != b.task.rollbacks {
		return a.task.rollbacks < b.task.rollbacks
	}
	if (a.task == requester) != (b.task == requester) {
		return b.task == requester
	}
	return a.task.th.ID() < b.task.th.ID()
}

// ---------------------------------------------------------------------------
// Periodic background detection (§1.1).

// scanForInversions scans every monitor for a waiter whose priority
// exceeds the deposited owner priority, requesting revocation when found.
func (rt *Runtime) scanForInversions() {
	for _, m := range rt.monitors {
		owner := m.Owner()
		if owner == nil {
			continue
		}
		w := m.HighestWaiter()
		if w == nil || w.Priority() <= m.OwnerPriority() {
			continue
		}
		ownerTask, ok := owner.Data.(*Task)
		if !ok {
			continue
		}
		rt.stats.Inversions++
		rt.tracer.Emit(trace.Event{At: rt.sch.Now(), Kind: trace.InversionDetected, Thread: w.Name(), Object: m.Name(), Detail: "periodic-scan"})
		rt.requestRevocation(ownerTask, m, "priority-inversion", w.Name())
	}
}

// ---------------------------------------------------------------------------
// Priority boosting (inheritance / ceiling baselines).

// boostChain raises the owner of a contended monitor to priority p, and
// follows the waits-for chain so the boost is transitive, as priority
// inheritance requires.
func (rt *Runtime) boostChain(owner *Task, p sched.Priority) {
	for owner != nil && owner.th.Priority() < p {
		rt.sch.SetPriority(owner.th, p)
		next, ok := rt.waiting[owner]
		if !ok || next.Owner() == nil {
			return
		}
		nt, ok := next.Owner().Data.(*Task)
		if !ok {
			return
		}
		owner = nt
	}
}

// unboost recomputes t's effective priority after it released a monitor:
// its base priority, raised to any ceiling or highest waiter of monitors it
// still holds.
func (rt *Runtime) unboost(t *Task) {
	p := t.th.BasePriority()
	for _, f := range t.frames {
		if f.reentrant {
			continue
		}
		if rt.cfg.PriorityCeiling && f.mon.Ceiling > p {
			p = f.mon.Ceiling
		}
		if rt.cfg.PriorityInheritance {
			if w := f.mon.HighestWaiter(); w != nil && w.Priority() > p {
				p = w.Priority()
			}
		}
	}
	rt.sch.SetPriority(t.th, p)
}

// ---------------------------------------------------------------------------

// ErrNotOwner is returned by operations requiring monitor ownership.
var ErrNotOwner = errors.New("core: monitor not owned by caller")
