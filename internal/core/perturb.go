package core

import (
	"repro/internal/simtime"
)

// This file is the what-if cost-perturbation hook (Config.Perturb): the
// runtime half of the causal profiler (internal/causal). Because the VM is
// deterministic in virtual time, a re-execution under a perturbed cost
// model is not an estimate — it is the exact program the perturbation
// describes, and the clock delta against the baseline run is the exact
// virtual speedup of the corresponding optimization. Three perturbations
// cover the optimizations the critical-path report can recommend:
//
//   - Scale: "what if the work at this (method, pc) site were k× cheaper?"
//   - Uncontended: "what if this monitor were never contended?"
//   - NoRevoke: "what if revocation were disabled for this monitor?"
//
// A nil Perturb adds no cost (the same contract as Race/Observer/Profiler:
// every hook sits behind a nil check), and an empty Perturb is
// behaviorally identical to nil — the zero-perturbation replay property
// the causal package pins tick-for-tick.

// Site names a bytecode site: the method and pc the interpreter stamps via
// the profiler mirror (SetProfSite/ProfPush). Site-scaled runs therefore
// need Config.Profiler attached; rvmrun -whatif attaches one automatically.
type Site struct {
	Method string
	PC     int
}

// Ratio is an exact rational scale factor. Scaled charges accumulate the
// remainder per site, so total scaled ticks equal floor(total·Num/Den)
// regardless of how the charges were split — deterministic, and immune to
// drift across re-executions.
type Ratio struct {
	Num, Den int64
}

// Perturb is the cost-perturbation configuration for one what-if
// re-execution.
type Perturb struct {
	// Scale multiplies Work charges at matching sites by Num/Den with
	// per-site remainder accumulation. Only the modeled computation (the
	// bytecode `work` operator and Go-level Task.Work) is scaled; barrier,
	// logging and undo charges are untouched, so "make this loop 2×
	// faster" leaves the synchronization cost model alone.
	Scale map[Site]Ratio

	// Uncontended names monitors executed under the zero-contention
	// override: monitorenter/exit on them elide acquisition entirely — no
	// queueing, no blocking, no ownership, no revocation — while write
	// barriers, undo logging and every tick charge inside the section stay
	// exactly as in the baseline. The run answers "how many ticks does
	// making this monitor uncontended buy". Monitors used with
	// Object.wait/notify cannot be elided (waiting requires real
	// ownership); Wait/Notify on one panics with a clear message.
	Uncontended map[string]bool

	// NoRevoke names monitors pinned non-revocable at creation, exactly as
	// a static pre-mark would: revocation requests against them are denied
	// and their sections run without undo logging — the per-monitor
	// ablation of the paper's mechanism.
	NoRevoke map[string]bool
}

// active reports whether any perturbation is configured; an empty Perturb
// behaves identically to nil.
func (p *Perturb) active() bool {
	return p != nil && (len(p.Scale) > 0 || len(p.Uncontended) > 0 || len(p.NoRevoke) > 0)
}

// scaleWork applies Perturb.Scale to one Work charge. applied is false when
// the current site has no scale entry (the charge passes through).
func (rt *Runtime) scaleWork(t *Task, n simtime.Ticks) (scaled simtime.Ticks, applied bool) {
	fn, pc := t.tp.Site()
	key := Site{Method: fn, PC: pc}
	r, ok := rt.cfg.Perturb.Scale[key]
	if !ok || r.Den <= 0 || r.Num < 0 {
		return n, false
	}
	if rt.scaleRem == nil {
		rt.scaleRem = make(map[Site]int64)
	}
	acc := int64(n)*r.Num + rt.scaleRem[key]
	rt.scaleRem[key] = acc % r.Den
	return simtime.Ticks(acc / r.Den), true
}
