package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/monitor"
	"repro/internal/race"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// This file is the execution-engine interface: the hooks the bytecode
// interpreter (internal/interp) uses to run synchronized sections without
// the Go-closure Synchronized wrapper. The engine manages its own control
// transfer (the paper's injected rollback-exception scopes), while the
// runtime keeps owning detection, logging, undo and monitor bookkeeping.
//
// Protocol:
//
//	t.EngineEnter(m)                 // monitorenter
//	...barriered loads/stores...
//	t.EngineExit(m)                  // monitorexit
//
// run inside a function guarded by recover; a delivered revocation panics
// through the engine, which converts it with AsRevocation, calls
// EngineUnwind to discard the doomed core frames, and transfers control
// back to its own representation of the section entry.

// RevokeInfo describes a delivered revocation as seen by an engine.
type RevokeInfo struct {
	// Target is the core frame depth of the section to re-execute: every
	// frame at depth >= Target has been rolled back and its monitors
	// released.
	Target int
	// Reason is "priority-inversion" or "deadlock".
	Reason string
}

// AsRevocation converts a recovered panic value into a RevokeInfo. ok is
// false for foreign panics, which the engine must re-raise.
func AsRevocation(r any) (RevokeInfo, bool) {
	if s, ok := r.(rollbackSignal); ok {
		return RevokeInfo{Target: s.target, Reason: s.reason}, true
	}
	return RevokeInfo{}, false
}

// EngineEnter acquires m and pushes a section frame — the monitorenter
// operation. It may block; it may deliver a pending revocation (panicking
// with the value AsRevocation recognizes).
func (t *Task) EngineEnter(m *monitor.Monitor) {
	t.enter(m)
}

// EngineExit commits and exits the top section frame — the monitorexit
// operation. It panics if m is not the top frame's monitor.
func (t *Task) EngineExit(m *monitor.Monitor) {
	t.commitTop(m)
}

// EngineEnterNonRevocable is EngineEnter fused with the static pre-mark
// for sections analysis proved non-revocable. The compiling tier resolves
// the section fact once at compile time and calls this instead of doing a
// per-execution fact lookup followed by PreMarkNonRevocable; the
// externally observable behavior (blocking, stats, trace events) is
// identical by construction.
func (t *Task) EngineEnterNonRevocable(m *monitor.Monitor, reason string) {
	t.enter(m)
	t.PreMarkNonRevocable(reason)
}

// EngineFrameDepth returns the current section nesting depth; the frame a
// subsequent EngineEnter creates will have index EngineFrameDepth().
func (t *Task) EngineFrameDepth() int { return len(t.frames) }

// MarkIrrevocable makes every enclosing synchronized section
// non-revocable, like a native-method call would (§2.2). Engines use it
// for code compiled without rollback scopes.
func (t *Task) MarkIrrevocable(reason string) {
	if len(t.frames) > 0 {
		t.markNonRevocable(reason)
	}
}

// PreMarkNonRevocable marks the just-entered (top) section's monitor
// non-revocable because static analysis proved a native call, volatile
// read, or wait is reachable inside it. Unlike MarkIrrevocable it touches
// only the top frame: outward propagation is unnecessary, since any
// enclosing section statically containing this one carries the same trigger
// in its own reachable set and received its own pre-mark. When every active
// frame is pre-marked, the whole nest runs with zero undo-log entries.
func (t *Task) PreMarkNonRevocable(reason string) {
	if len(t.frames) == 0 {
		return
	}
	f := &t.frames[len(t.frames)-1]
	if nr, _ := f.mon.NonRevocable(); nr {
		return
	}
	f.mon.MarkNonRevocable(reason)
	t.rt.stats.StaticPreMarks++
	t.rt.tracer.Emit(trace.Event{At: t.rt.sch.Now(), Kind: trace.StaticPreMark, Thread: t.Name(), Object: f.mon.Name(), Detail: reason})
}

// RegisterAllocObject logs a whole-allocation undo entry for an object
// allocated while logging is active. Rollback restores the object to its
// allocation-time slots, which lets stores the static analysis proved
// target a fresh object skip their write barriers.
func (t *Task) RegisterAllocObject(o *heap.Object) {
	if t.logging() {
		t.log.LogAllocObject(o)
	}
}

// RegisterAllocArray is RegisterAllocObject for arrays.
func (t *Task) RegisterAllocArray(a *heap.Array) {
	if t.logging() {
		t.log.LogAllocArray(a)
	}
}

// CountRawStore records the execution of a statically elided store — a
// write that ran barrier-free because analysis proved logging could never
// be needed.
func (t *Task) CountRawStore() { t.rt.stats.RawStores++ }

// CountConfinedElision records the execution of a certified confined
// MONITORENTER or MONITOREXIT as a charge-only no-op: analysis proved no
// second thread can ever reach the monitor's object.
func (t *Task) CountConfinedElision() { t.rt.stats.ConfinedElisions++ }

// SetLockSite names the bytecode site of the next monitor acquisition for
// the wait-for-graph observer's cycle reports. The interpreter calls it
// before each monitorenter when Config.OnDeadlock is set.
func (t *Task) SetLockSite(method string, pc int) {
	t.lockMethod, t.lockPC = method, pc
}

// ---------------------------------------------------------------------------
// Race-sanitizer hooks (Config.Race != nil; all no-ops otherwise).

// SetRaceSite names the bytecode site of the next barriered access for race
// reports. The interpreter calls it before each heap-access instruction
// when the sanitizer is enabled.
func (t *Task) SetRaceSite(method string, pc int) {
	t.raceMethod, t.racePC = method, pc
}

// raceSite returns the current access site for the sanitizer.
func (t *Task) raceSite() race.Site {
	return race.Site{Method: t.raceMethod, PC: t.racePC}
}

// ---------------------------------------------------------------------------
// Profiler hooks (Config.Profiler != nil; all no-ops otherwise). The
// interpreter mirrors its frame stack into the profiler: SetProfSite before
// every instruction, ProfPush at method entry, ProfPopTo after any pop
// (return, exception unwind, rollback discard).

// SetProfSite stamps the current bytecode pc; subsequent tick charges are
// attributed to (current method, pc).
func (t *Task) SetProfSite(pc int) {
	if t.tp != nil {
		t.tp.SetPC(pc)
	}
}

// ProfPush enters method fn in the profiler's call tree.
func (t *Task) ProfPush(fn string) {
	if t.tp != nil {
		t.tp.Push(fn)
	}
}

// ProfPopTo truncates the profiler's call stack to depth method frames.
func (t *Task) ProfPopTo(depth int) {
	if t.tp != nil {
		t.tp.PopTo(depth)
	}
}

// ProfDepth returns the profiler's current method-frame depth (0 when
// profiling is off — engines record it before pushing frames and restore
// it when their own stack unwinds).
func (t *Task) ProfDepth() int {
	if t.tp != nil {
		return t.tp.Depth()
	}
	return 0
}

// RaceRawWriteField records a barrier-elided field store with the
// sanitizer. Raw stores survive rollback (their undo entries, if any, are
// whole-allocation ones), so the sanitizer marks them non-retractable.
func (t *Task) RaceRawWriteField(o *heap.Object, idx int) {
	if d := t.rt.cfg.Race; d != nil {
		d.RawWrite(t.th.ID(), race.Slot{Kind: heap.KindObject, ID: o.ID(), Idx: idx}, t.raceSite())
	}
}

// RaceRawWriteElem is RaceRawWriteField for array elements.
func (t *Task) RaceRawWriteElem(a *heap.Array, idx int) {
	if d := t.rt.cfg.Race; d != nil {
		d.RawWrite(t.th.ID(), race.Slot{Kind: heap.KindArray, ID: a.ID(), Idx: idx}, t.raceSite())
	}
}

// RaceRawWriteStatic is RaceRawWriteField for statics.
func (t *Task) RaceRawWriteStatic(idx int) {
	if d := t.rt.cfg.Race; d != nil {
		d.RawWrite(t.th.ID(), race.Slot{Kind: heap.KindStatic, Idx: idx}, t.raceSite())
	}
}

// EngineUnwind discards the bookkeeping of the rolled-back frames
// [target:] after a recovered revocation (their heap effects and monitors
// were already handled at delivery), records the re-execution, and applies
// the deadlock backoff. It returns the retry attempt count of the target
// section.
func (t *Task) EngineUnwind(info RevokeInfo) int {
	if info.Target < 0 || info.Target >= len(t.frames) {
		panic(fmt.Sprintf("core: EngineUnwind target %d with %d frames", info.Target, len(t.frames)))
	}
	f := t.frames[info.Target]
	t.frames = t.frames[:info.Target]
	t.clampNonRevBelow()
	t.reexecutions++
	t.rt.stats.Reexecutions++
	t.rt.tracer.Emit(trace.Event{At: t.rt.sch.Now(), Kind: trace.Reexecution, Thread: t.Name(), Object: f.mon.Name(),
		N: int64(f.attempts + 1), Detail: fmt.Sprintf("attempt=%d engine", f.attempts+1)})
	if info.Reason == "deadlock" {
		backoff := t.rt.cfg.DeadlockBackoff
		if backoff <= 0 {
			backoff = t.rt.sch.Quantum()
		}
		t.Sleep(backoff * simtime.Ticks(f.attempts))
	}
	t.retryAttempts = f.attempts
	return f.attempts
}
