package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/heap"
	"repro/internal/monitor"
	"repro/internal/sched"
	"repro/internal/simtime"
)

// TestMultiMonitorAtomicityProperty extends the atomicity property to
// several monitors with nested acquisition in a globally consistent order
// (no deadlocks by construction): every monitor guards its own consistent
// triple; rollbacks must never expose torn triples.
func TestMultiMonitorAtomicityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rt := New(Config{
			Mode:              Revocation,
			TrackDependencies: true,
			Sched:             sched.Config{Quantum: 29, Seed: seed},
		})
		h := rt.Heap()
		const nMon = 3
		objs := make([]*heap.Object, nMon)
		ms := make([]*monAndObj, nMon)
		for i := 0; i < nMon; i++ {
			o := h.AllocPlain(fmt.Sprintf("triple%d", i), 3)
			o.Set(1, 1)
			o.Set(2, 2)
			objs[i] = o
			ms[i] = &monAndObj{m: rt.NewMonitor(fmt.Sprintf("M%d", i)), o: o}
		}
		ok := true
		rng := rand.New(rand.NewSource(seed))
		prios := []sched.Priority{sched.LowPriority, sched.NormPriority, sched.HighPriority}
		for ti := 0; ti < 5; ti++ {
			base := heap.Word(rng.Int63n(1000))
			prio := prios[rng.Intn(len(prios))]
			// Each section acquires a random ascending subset of the
			// monitors (global order prevents deadlock) and updates the
			// innermost one's triple.
			first := rng.Intn(nMon)
			depth := 1 + rng.Intn(nMon-first)
			work1 := simtime.Ticks(rng.Intn(40))
			work2 := simtime.Ticks(rng.Intn(40))
			rt.Spawn(fmt.Sprintf("t%d", ti), prio, func(tk *Task) {
				for k := 0; k < 3; k++ {
					var enter func(i int)
					enter = func(i int) {
						tk.Synchronized(ms[i].m, func() {
							if i+1 < first+depth {
								enter(i + 1)
								return
							}
							o := ms[i].o
							a := tk.ReadField(o, 0)
							if tk.ReadField(o, 1) != a+1 || tk.ReadField(o, 2) != a+2 {
								ok = false
							}
							v := base + heap.Word(k)
							tk.WriteField(o, 0, v)
							tk.Work(work1)
							tk.WriteField(o, 1, v+1)
							tk.Work(work2)
							tk.WriteField(o, 2, v+2)
						})
					}
					enter(first)
					tk.Sleep(simtime.Ticks(rng.Intn(30)))
				}
			})
		}
		if err := rt.Run(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, o := range objs {
			if o.Get(1) != o.Get(0)+1 || o.Get(2) != o.Get(0)+2 {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// monAndObj pairs a monitor with the object it guards (test helper).
type monAndObj struct {
	m *monitor.Monitor
	o *heap.Object
}

// TestDeadlockStormProperty spawns threads acquiring random lock pairs in
// random order — a deadlock factory. With detection enabled every run must
// complete, and mutual exclusion totals must be exact.
func TestDeadlockStormProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rt := New(Config{
			Mode:              Revocation,
			DeadlockDetection: true,
			DeadlockBackoff:   50,
			Sched:             sched.Config{Quantum: 23, Seed: seed},
		})
		h := rt.Heap()
		const threads, rounds = 4, 4
		// Each thread increments its own slot so the final total is exact
		// even though different threads guard their writes with different
		// locks (a shared slot would be a legal data race).
		counter := h.AllocPlain("counter", threads)
		locks := []*monitor.Monitor{rt.NewMonitor("A"), rt.NewMonitor("B"), rt.NewMonitor("C")}
		rng := rand.New(rand.NewSource(seed))
		for ti := 0; ti < threads; ti++ {
			ti := ti
			a := rng.Intn(len(locks))
			b := rng.Intn(len(locks))
			w := simtime.Ticks(rng.Intn(60) + 1)
			rt.Spawn(fmt.Sprintf("t%d", ti), sched.NormPriority, func(tk *Task) {
				for k := 0; k < rounds; k++ {
					tk.Synchronized(locks[a], func() {
						tk.Work(w)
						incr := func() {
							v := tk.ReadField(counter, ti)
							tk.WriteField(counter, ti, v+1)
						}
						if a != b {
							tk.Synchronized(locks[b], incr)
						} else {
							incr()
						}
					})
				}
			})
		}
		if err := rt.Run(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		total := heap.Word(0)
		for i := 0; i < threads; i++ {
			total += counter.Get(i)
		}
		return total == threads*rounds
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestStatsInvariants: across random contended runs, the counters obey
// their structural relations.
func TestStatsInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rt := New(Config{
			Mode:              Revocation,
			TrackDependencies: true,
			Sched:             sched.Config{Quantum: 31, Seed: seed},
		})
		o := rt.Heap().AllocPlain("o", 4)
		m := rt.NewMonitor("m")
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 6; i++ {
			prio := sched.Priority(1 + rng.Intn(9))
			w := simtime.Ticks(rng.Intn(100))
			rt.Spawn(fmt.Sprintf("t%d", i), prio, func(tk *Task) {
				for k := 0; k < 4; k++ {
					tk.Sleep(simtime.Ticks(rng.Intn(50)))
					tk.Synchronized(m, func() {
						tk.WriteField(o, k%4, heap.Word(k))
						tk.Work(w)
					})
				}
			})
		}
		if err := rt.Run(); err != nil {
			return false
		}
		st := rt.Stats()
		// Each rollback and each preempted grant consumed one request.
		if st.Rollbacks+st.PreemptedGrants > st.RevocationRequests {
			return false
		}
		// Re-executions correspond one-to-one to rollbacks.
		if st.Reexecutions != st.Rollbacks {
			return false
		}
		// Requests never exceed detected inversions.
		if st.RevocationRequests > st.Inversions {
			return false
		}
		// Undone entries were all logged first.
		if st.EntriesUndone > st.EntriesLogged {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRevocationUnderPrioritySchedulerProperty: the pathfinder scenario
// with randomized parameters — the high-priority thread must always finish
// before the plain-blocking baseline does.
func TestRevocationUnderPrioritySchedulerProperty(t *testing.T) {
	prop := func(seed int64) bool {
		run := func(mode Mode) (simtime.Ticks, error) {
			rng := rand.New(rand.NewSource(seed))
			rt := New(Config{
				Mode:  mode,
				Sched: sched.Config{Quantum: 50, Policy: sched.PriorityRR, Seed: seed},
			})
			m := rt.NewMonitor("bus")
			section := simtime.Ticks(rng.Intn(3000) + 1000)
			medWork := simtime.Ticks(rng.Intn(5000) + 3000)
			var highDone simtime.Ticks
			rt.Spawn("low", sched.LowPriority, func(tk *Task) {
				tk.Synchronized(m, func() { tk.Work(section) })
			})
			for i := 0; i < 3; i++ {
				rt.Spawn(fmt.Sprintf("med%d", i), sched.NormPriority, func(tk *Task) {
					tk.Sleep(20)
					tk.Work(medWork)
				})
			}
			rt.Spawn("high", sched.HighPriority, func(tk *Task) {
				tk.Sleep(60)
				tk.Synchronized(m, func() { tk.Work(50) })
				highDone = rt.Now()
			})
			if err := rt.Run(); err != nil {
				return 0, err
			}
			return highDone, nil
		}
		rev, err := run(Revocation)
		if err != nil {
			return false
		}
		plain, err := run(Unmodified)
		if err != nil {
			return false
		}
		return rev <= plain
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDedupRollbackEquivalenceProperty runs identical randomized
// revocation-heavy programs twice — once with first-write-wins undo dedup
// (the production barrier) and once with the test-only noDedup knob forcing
// one log entry per store — and asserts the heap snapshots observed
// immediately after each rollback, and at program end, are identical. This
// is the §3.1.2 guarantee ("as if the low-priority thread never executed
// the section") carried from the undo-layer property up through the full
// revocation machinery.
func TestDedupRollbackEquivalenceProperty(t *testing.T) {
	var dedupTotal, rollbackTotal int64
	prop := func(seed int64) bool {
		type result struct {
			post  []heap.Snapshot // heap as seen right after each rollback
			final heap.Snapshot
			st    Stats
			err   error
		}
		rng := rand.New(rand.NewSource(seed))
		const rounds, slots = 3, 4
		writes := 10 + rng.Intn(50)
		kinds := make([]int, writes)
		idxs := make([]int, writes)
		for i := range kinds {
			kinds[i] = rng.Intn(3)
			idxs[i] = rng.Intn(slots)
		}
		run := func(noDedup bool) result {
			rt := New(Config{
				Mode: Revocation, NoCosts: true, TrackDependencies: true,
				Sched: sched.Config{Quantum: 1 << 40, Seed: seed},
			})
			rt.noDedup = noDedup
			h := rt.Heap()
			o := h.AllocPlain("o", slots)
			a := h.AllocArray(slots)
			s := h.DefineStatic("s", false, 0)
			m := rt.NewMonitor("m")
			var res result
			ready, handled := false, false
			rt.Spawn("low", sched.LowPriority, func(tk *Task) {
				for r := 0; r < rounds; r++ {
					attempt := 0
					handled = false
					tk.Synchronized(m, func() {
						attempt++
						for i := 0; i < writes; i++ {
							// Re-executions write different values, so an
							// incomplete rollback leaves distinguishable
							// first-attempt residue.
							v := heap.Word(r*10000 + attempt*1000 + i)
							switch kinds[i] {
							case 0:
								tk.WriteField(o, idxs[i], v)
							case 1:
								tk.WriteElem(a, idxs[i], v)
							default:
								tk.WriteStatic(s, v)
							}
						}
						if attempt == 1 {
							// Park until revoked by the high thread.
							ready = true
							for !handled {
								tk.Thread().Yield()
								tk.YieldPoint()
							}
						}
					})
				}
			})
			rt.Spawn("high", sched.HighPriority, func(tk *Task) {
				for r := 0; r < rounds; r++ {
					for !ready {
						tk.Thread().Yield()
					}
					ready = false
					tk.Synchronized(m, func() {
						res.post = append(res.post, h.Snapshot())
						handled = true
					})
				}
			})
			res.err = rt.Run()
			res.final = h.Snapshot()
			res.st = rt.Stats()
			return res
		}
		dd := run(false)
		nd := run(true)
		if dd.err != nil || nd.err != nil {
			t.Logf("seed %d: errs %v / %v", seed, dd.err, nd.err)
			return false
		}
		if len(dd.post) != rounds || len(nd.post) != rounds {
			return false
		}
		for i := range dd.post {
			if !dd.post[i].Equal(nd.post[i]) {
				t.Logf("seed %d round %d: post-rollback snapshots differ:\n%s",
					seed, i, dd.post[i].Diff(nd.post[i]))
				return false
			}
		}
		if !dd.final.Equal(nd.final) {
			t.Logf("seed %d: final snapshots differ:\n%s", seed, dd.final.Diff(nd.final))
			return false
		}
		if nd.st.StoresDeduped != 0 {
			return false
		}
		if dd.st.EntriesLogged > nd.st.EntriesLogged {
			return false
		}
		if dd.st.Rollbacks != rounds || nd.st.Rollbacks != rounds {
			return false
		}
		dedupTotal += dd.st.StoresDeduped
		rollbackTotal += dd.st.Rollbacks
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
	if dedupTotal == 0 {
		t.Fatal("dedup path never exercised across any seed")
	}
	if rollbackTotal == 0 {
		t.Fatal("no rollbacks exercised across any seed")
	}
}

// TestAllocEntryRollbackEquivalenceProperty is the soundness property behind
// the static analysis' fresh-target barrier elision: raw (unbarriered)
// stores into an object registered as allocated-in-section must roll back
// exactly like individually logged stores, because the single alloc-entry
// restores the whole allocation. Identical randomized programs run twice —
// once with raw stores + RegisterAlloc*, once with the per-store barrier —
// and the heaps right after the rollback and at the end must be identical.
func TestAllocEntryRollbackEquivalenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const slots = 4
		writes := 5 + rng.Intn(40)
		targets := make([]int, writes) // 0 fresh object, 1 fresh array, 2 pre-existing object
		idxs := make([]int, writes)
		for i := range targets {
			targets[i] = rng.Intn(3)
			idxs[i] = rng.Intn(slots)
		}
		type result struct {
			post, final heap.Snapshot
			frozen      bool // attempt-1 allocation fully zeroed after rollback
			st          Stats
			err         error
		}
		run := func(raw bool) result {
			rt := New(Config{
				Mode: Revocation, NoCosts: true, TrackDependencies: true,
				Sched: sched.Config{Quantum: 1 << 40, Seed: seed},
			})
			h := rt.Heap()
			old := h.AllocPlain("old", slots)
			m := rt.NewMonitor("m")
			var res result
			var firstObj *heap.Object
			var firstArr *heap.Array
			ready, handled := false, false
			rt.Spawn("low", sched.LowPriority, func(tk *Task) {
				attempt := 0
				tk.Synchronized(m, func() {
					attempt++
					o := h.AllocPlain("fresh", slots)
					a := h.AllocArray(slots)
					if attempt == 1 {
						firstObj, firstArr = o, a
					}
					if raw {
						// What the interpreter does at NEWOBJ/NEWARR when
						// facts are present; the stores below then skip the
						// write barrier entirely.
						tk.RegisterAllocObject(o)
						tk.RegisterAllocArray(a)
					}
					for i := 0; i < writes; i++ {
						v := heap.Word(attempt*1000 + i)
						switch targets[i] {
						case 0:
							if raw {
								o.Set(idxs[i], v)
							} else {
								tk.WriteField(o, idxs[i], v)
							}
						case 1:
							if raw {
								a.Set(idxs[i], v)
							} else {
								tk.WriteElem(a, idxs[i], v)
							}
						default:
							// Stale target: the analysis can never elide
							// this one, so it is always barriered.
							tk.WriteField(old, idxs[i], v)
						}
					}
					if attempt == 1 {
						ready = true
						for !handled {
							tk.Thread().Yield()
							tk.YieldPoint()
						}
					}
				})
			})
			rt.Spawn("high", sched.HighPriority, func(tk *Task) {
				for !ready {
					tk.Thread().Yield()
				}
				tk.Synchronized(m, func() {
					res.post = h.Snapshot()
					res.frozen = true
					for i := 0; i < slots; i++ {
						if firstObj.Get(i) != 0 || firstArr.Get(i) != 0 {
							res.frozen = false
						}
					}
					handled = true
				})
			})
			res.err = rt.Run()
			res.final = h.Snapshot()
			res.st = rt.Stats()
			return res
		}
		rawRes := run(true)
		barRes := run(false)
		if rawRes.err != nil || barRes.err != nil {
			t.Logf("seed %d: errs %v / %v", seed, rawRes.err, barRes.err)
			return false
		}
		if rawRes.st.Rollbacks != 1 || barRes.st.Rollbacks != 1 {
			return false
		}
		// The rolled-back attempt-1 allocations must read as freshly
		// allocated again, in both runs.
		if !rawRes.frozen || !barRes.frozen {
			t.Logf("seed %d: attempt-1 allocations not restored (raw=%v barrier=%v)",
				seed, rawRes.frozen, barRes.frozen)
			return false
		}
		if !rawRes.post.Equal(barRes.post) {
			t.Logf("seed %d: post-rollback snapshots differ:\n%s",
				seed, rawRes.post.Diff(barRes.post))
			return false
		}
		if !rawRes.final.Equal(barRes.final) {
			t.Logf("seed %d: final snapshots differ:\n%s",
				seed, rawRes.final.Diff(barRes.final))
			return false
		}
		// Alloc entries are logged on both attempts of the raw run and are
		// counted separately from the paper's logged-stores statistic.
		if rawRes.st.AllocsLogged < 2 || barRes.st.AllocsLogged != 0 {
			return false
		}
		return rawRes.st.EntriesLogged <= barRes.st.EntriesLogged
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
