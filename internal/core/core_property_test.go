package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/heap"
	"repro/internal/monitor"
	"repro/internal/sched"
	"repro/internal/simtime"
)

// TestMultiMonitorAtomicityProperty extends the atomicity property to
// several monitors with nested acquisition in a globally consistent order
// (no deadlocks by construction): every monitor guards its own consistent
// triple; rollbacks must never expose torn triples.
func TestMultiMonitorAtomicityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rt := New(Config{
			Mode:              Revocation,
			TrackDependencies: true,
			Sched:             sched.Config{Quantum: 29, Seed: seed},
		})
		h := rt.Heap()
		const nMon = 3
		objs := make([]*heap.Object, nMon)
		ms := make([]*monAndObj, nMon)
		for i := 0; i < nMon; i++ {
			o := h.AllocPlain(fmt.Sprintf("triple%d", i), 3)
			o.Set(1, 1)
			o.Set(2, 2)
			objs[i] = o
			ms[i] = &monAndObj{m: rt.NewMonitor(fmt.Sprintf("M%d", i)), o: o}
		}
		ok := true
		rng := rand.New(rand.NewSource(seed))
		prios := []sched.Priority{sched.LowPriority, sched.NormPriority, sched.HighPriority}
		for ti := 0; ti < 5; ti++ {
			base := heap.Word(rng.Int63n(1000))
			prio := prios[rng.Intn(len(prios))]
			// Each section acquires a random ascending subset of the
			// monitors (global order prevents deadlock) and updates the
			// innermost one's triple.
			first := rng.Intn(nMon)
			depth := 1 + rng.Intn(nMon-first)
			work1 := simtime.Ticks(rng.Intn(40))
			work2 := simtime.Ticks(rng.Intn(40))
			rt.Spawn(fmt.Sprintf("t%d", ti), prio, func(tk *Task) {
				for k := 0; k < 3; k++ {
					var enter func(i int)
					enter = func(i int) {
						tk.Synchronized(ms[i].m, func() {
							if i+1 < first+depth {
								enter(i + 1)
								return
							}
							o := ms[i].o
							a := tk.ReadField(o, 0)
							if tk.ReadField(o, 1) != a+1 || tk.ReadField(o, 2) != a+2 {
								ok = false
							}
							v := base + heap.Word(k)
							tk.WriteField(o, 0, v)
							tk.Work(work1)
							tk.WriteField(o, 1, v+1)
							tk.Work(work2)
							tk.WriteField(o, 2, v+2)
						})
					}
					enter(first)
					tk.Sleep(simtime.Ticks(rng.Intn(30)))
				}
			})
		}
		if err := rt.Run(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, o := range objs {
			if o.Get(1) != o.Get(0)+1 || o.Get(2) != o.Get(0)+2 {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// monAndObj pairs a monitor with the object it guards (test helper).
type monAndObj struct {
	m *monitor.Monitor
	o *heap.Object
}

// TestDeadlockStormProperty spawns threads acquiring random lock pairs in
// random order — a deadlock factory. With detection enabled every run must
// complete, and mutual exclusion totals must be exact.
func TestDeadlockStormProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rt := New(Config{
			Mode:              Revocation,
			DeadlockDetection: true,
			DeadlockBackoff:   50,
			Sched:             sched.Config{Quantum: 23, Seed: seed},
		})
		h := rt.Heap()
		const threads, rounds = 4, 4
		// Each thread increments its own slot so the final total is exact
		// even though different threads guard their writes with different
		// locks (a shared slot would be a legal data race).
		counter := h.AllocPlain("counter", threads)
		locks := []*monitor.Monitor{rt.NewMonitor("A"), rt.NewMonitor("B"), rt.NewMonitor("C")}
		rng := rand.New(rand.NewSource(seed))
		for ti := 0; ti < threads; ti++ {
			ti := ti
			a := rng.Intn(len(locks))
			b := rng.Intn(len(locks))
			w := simtime.Ticks(rng.Intn(60) + 1)
			rt.Spawn(fmt.Sprintf("t%d", ti), sched.NormPriority, func(tk *Task) {
				for k := 0; k < rounds; k++ {
					tk.Synchronized(locks[a], func() {
						tk.Work(w)
						incr := func() {
							v := tk.ReadField(counter, ti)
							tk.WriteField(counter, ti, v+1)
						}
						if a != b {
							tk.Synchronized(locks[b], incr)
						} else {
							incr()
						}
					})
				}
			})
		}
		if err := rt.Run(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		total := heap.Word(0)
		for i := 0; i < threads; i++ {
			total += counter.Get(i)
		}
		return total == threads*rounds
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestStatsInvariants: across random contended runs, the counters obey
// their structural relations.
func TestStatsInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rt := New(Config{
			Mode:              Revocation,
			TrackDependencies: true,
			Sched:             sched.Config{Quantum: 31, Seed: seed},
		})
		o := rt.Heap().AllocPlain("o", 4)
		m := rt.NewMonitor("m")
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 6; i++ {
			prio := sched.Priority(1 + rng.Intn(9))
			w := simtime.Ticks(rng.Intn(100))
			rt.Spawn(fmt.Sprintf("t%d", i), prio, func(tk *Task) {
				for k := 0; k < 4; k++ {
					tk.Sleep(simtime.Ticks(rng.Intn(50)))
					tk.Synchronized(m, func() {
						tk.WriteField(o, k%4, heap.Word(k))
						tk.Work(w)
					})
				}
			})
		}
		if err := rt.Run(); err != nil {
			return false
		}
		st := rt.Stats()
		// Each rollback and each preempted grant consumed one request.
		if st.Rollbacks+st.PreemptedGrants > st.RevocationRequests {
			return false
		}
		// Re-executions correspond one-to-one to rollbacks.
		if st.Reexecutions != st.Rollbacks {
			return false
		}
		// Requests never exceed detected inversions.
		if st.RevocationRequests > st.Inversions {
			return false
		}
		// Undone entries were all logged first.
		if st.EntriesUndone > st.EntriesLogged {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRevocationUnderPrioritySchedulerProperty: the pathfinder scenario
// with randomized parameters — the high-priority thread must always finish
// before the plain-blocking baseline does.
func TestRevocationUnderPrioritySchedulerProperty(t *testing.T) {
	prop := func(seed int64) bool {
		run := func(mode Mode) (simtime.Ticks, error) {
			rng := rand.New(rand.NewSource(seed))
			rt := New(Config{
				Mode:  mode,
				Sched: sched.Config{Quantum: 50, Policy: sched.PriorityRR, Seed: seed},
			})
			m := rt.NewMonitor("bus")
			section := simtime.Ticks(rng.Intn(3000) + 1000)
			medWork := simtime.Ticks(rng.Intn(5000) + 3000)
			var highDone simtime.Ticks
			rt.Spawn("low", sched.LowPriority, func(tk *Task) {
				tk.Synchronized(m, func() { tk.Work(section) })
			})
			for i := 0; i < 3; i++ {
				rt.Spawn(fmt.Sprintf("med%d", i), sched.NormPriority, func(tk *Task) {
					tk.Sleep(20)
					tk.Work(medWork)
				})
			}
			rt.Spawn("high", sched.HighPriority, func(tk *Task) {
				tk.Sleep(60)
				tk.Synchronized(m, func() { tk.Work(50) })
				highDone = rt.Now()
			})
			if err := rt.Run(); err != nil {
				return 0, err
			}
			return highDone, nil
		}
		rev, err := run(Revocation)
		if err != nil {
			return false
		}
		plain, err := run(Unmodified)
		if err != nil {
			return false
		}
		return rev <= plain
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
