package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/heap"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// TestSectionAtomicityProperty is the central safety property: under random
// contention with revocations, every synchronized section appears atomic.
// Each writer section stores a consistent triple (x, x+1, x+2); every
// observer (inside the same monitor) must always see a consistent triple.
func TestSectionAtomicityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rt := New(Config{
			Mode:              Revocation,
			TrackDependencies: true,
			DeadlockDetection: true,
			Sched:             sched.Config{Quantum: 13, Seed: seed},
		})
		h := rt.Heap()
		o := h.AllocPlain("triple", 3)
		o.Set(1, 1) // start from the consistent triple (0, 1, 2)
		o.Set(2, 2)
		m := rt.NewMonitor("M")
		consistent := true
		rng := rand.New(rand.NewSource(seed))
		prios := []sched.Priority{sched.LowPriority, sched.NormPriority, sched.HighPriority}
		for i := 0; i < 6; i++ {
			base := heap.Word(rng.Int63n(1000))
			prio := prios[rng.Intn(len(prios))]
			rt.Spawn(fmt.Sprintf("t%d", i), prio, func(tk *Task) {
				for k := 0; k < 4; k++ {
					tk.Synchronized(m, func() {
						a := tk.ReadField(o, 0)
						b := tk.ReadField(o, 1)
						c := tk.ReadField(o, 2)
						if b != a+1 || c != a+2 {
							consistent = false
						}
						v := base + heap.Word(k)
						tk.WriteField(o, 0, v)
						tk.Work(simtime.Ticks(rng.Intn(30)))
						tk.WriteField(o, 1, v+1)
						tk.Work(simtime.Ticks(rng.Intn(30)))
						tk.WriteField(o, 2, v+2)
					})
					tk.Work(simtime.Ticks(rng.Intn(20)))
				}
			})
		}
		if err := rt.Run(); err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		// Final state must also be a consistent triple.
		if o.Get(1) != o.Get(0)+1 || o.Get(2) != o.Get(0)+2 {
			return false
		}
		return consistent
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism: identical seeds give bit-identical schedules, stats and
// final virtual time.
func TestDeterminism(t *testing.T) {
	run := func() (simtime.Ticks, Stats) {
		rt := New(Config{
			Mode:              Revocation,
			TrackDependencies: true,
			Sched:             sched.Config{Quantum: 17, Seed: 99},
		})
		h := rt.Heap()
		o := h.AllocPlain("C", 1)
		m := rt.NewMonitor("M")
		for i := 0; i < 4; i++ {
			prio := sched.LowPriority
			if i%2 == 0 {
				prio = sched.HighPriority
			}
			rt.Spawn(fmt.Sprintf("t%d", i), prio, func(tk *Task) {
				for k := 0; k < 5; k++ {
					tk.Sleep(simtime.Ticks(rt.Scheduler().Rng().Int63n(20)))
					tk.Synchronized(m, func() {
						x := tk.ReadField(o, 0)
						tk.Work(40)
						tk.WriteField(o, 0, x+1)
					})
				}
			})
		}
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.Now(), rt.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Fatalf("virtual end times differ: %d vs %d", t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("stats differ:\n%+v\n%+v", s1, s2)
	}
}

// TestMediumThreadsScenario is the motivating unbounded-inversion schedule:
// one low thread holds the lock, several medium threads hog the CPU, one
// high thread needs the lock. With revocation the high thread's completion
// time must beat the unmodified VM's.
func TestMediumThreadsScenario(t *testing.T) {
	run := func(mode Mode) simtime.Ticks {
		rt := New(Config{Mode: mode, Sched: sched.Config{Quantum: 50, Seed: 7}})
		m := rt.NewMonitor("M")
		var highDone simtime.Ticks
		rt.Spawn("low", sched.LowPriority, func(tk *Task) {
			tk.Synchronized(m, func() {
				tk.Work(5000)
			})
		})
		for i := 0; i < 4; i++ {
			rt.Spawn(fmt.Sprintf("med%d", i), sched.NormPriority, func(tk *Task) {
				tk.Work(3000)
			})
		}
		rt.Spawn("high", sched.HighPriority, func(tk *Task) {
			tk.Work(60) // let low grab the lock first
			tk.Synchronized(m, func() {
				tk.Work(100)
			})
			highDone = rt.Now()
		})
		if err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		return highDone
	}
	modified := run(Revocation)
	unmodified := run(Unmodified)
	if modified >= unmodified {
		t.Fatalf("revocation did not help the high-priority thread: %d vs %d", modified, unmodified)
	}
}

// TestPeriodicDetection uses the background scanner instead of acquire-time
// detection; the inversion must still be resolved.
func TestPeriodicDetection(t *testing.T) {
	rt := New(Config{
		Mode:         Revocation,
		Detect:       DetectPeriodic,
		DetectPeriod: 25,
		Sched:        sched.Config{Quantum: 25},
	})
	m := rt.NewMonitor("M")
	var order []string
	rt.Spawn("low", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			tk.Work(2000)
			order = append(order, "low")
		})
	})
	rt.Spawn("high", sched.HighPriority, func(tk *Task) {
		tk.Work(30)
		tk.Synchronized(m, func() {
			order = append(order, "high")
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "high" {
		t.Fatalf("order = %v, want high first via periodic detection", order)
	}
	if rt.Stats().Rollbacks == 0 {
		t.Fatal("no rollback via periodic detection")
	}
}

// TestPriorityInheritanceProtocol: with inheritance enabled (and
// Unmodified mode), the blocked high-priority thread boosts the owner.
func TestPriorityInheritanceProtocol(t *testing.T) {
	rt := New(Config{
		Mode:                Unmodified,
		PriorityInheritance: true,
		Sched:               sched.Config{Quantum: 50, Policy: sched.PriorityRR},
	})
	m := rt.NewMonitor("M")
	var lowTask *Task
	var boosted sched.Priority
	lowTask = rt.Spawn("low", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			tk.Work(500)
			boosted = tk.Priority() // while high is blocked on us
		})
		if tk.Priority() != sched.LowPriority {
			t.Error("priority not restored after release")
		}
	})
	rt.Spawn("high", sched.HighPriority, func(tk *Task) {
		tk.Sleep(10) // let low grab the lock under the priority scheduler
		tk.Synchronized(m, func() {})
	})
	_ = lowTask
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if boosted != sched.HighPriority {
		t.Fatalf("owner priority while blocked = %d, want %d (inherited)", boosted, sched.HighPriority)
	}
}

// TestTransitiveInheritance: a chain low->mid->high must boost both owners.
func TestTransitiveInheritance(t *testing.T) {
	rt := New(Config{
		Mode:                Unmodified,
		PriorityInheritance: true,
		Sched:               sched.Config{Quantum: 50, Policy: sched.PriorityRR},
	})
	m1 := rt.NewMonitor("M1")
	m2 := rt.NewMonitor("M2")
	var lowPrioSeen sched.Priority
	rt.Spawn("low", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(m1, func() {
			tk.Work(800)
			lowPrioSeen = tk.Priority()
		})
	})
	rt.Spawn("mid", sched.NormPriority, func(tk *Task) {
		tk.Sleep(10)
		tk.Synchronized(m2, func() {
			tk.Synchronized(m1, func() {}) // blocks on low
		})
	})
	rt.Spawn("high", sched.HighPriority, func(tk *Task) {
		tk.Sleep(200)                  // arrive after mid holds M2 and is blocked on M1
		tk.Synchronized(m2, func() {}) // blocks on mid, boosting low transitively
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if lowPrioSeen != sched.HighPriority {
		t.Fatalf("low's priority = %d, want %d via transitive inheritance", lowPrioSeen, sched.HighPriority)
	}
}

// TestPriorityCeilingProtocol: acquiring a monitor with a ceiling raises
// the owner immediately, preventing preemption by mid-priority threads
// under the priority scheduler.
func TestPriorityCeilingProtocol(t *testing.T) {
	rt := New(Config{
		Mode:            Unmodified,
		PriorityCeiling: true,
		Sched:           sched.Config{Quantum: 50, Policy: sched.PriorityRR},
	})
	m := rt.NewMonitor("M")
	m.Ceiling = sched.HighPriority
	var inside sched.Priority
	rt.Spawn("low", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			inside = tk.Priority()
		})
		if tk.Priority() != sched.LowPriority {
			t.Error("priority not restored after ceiling release")
		}
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if inside != sched.HighPriority {
		t.Fatalf("priority inside ceiling section = %d, want %d", inside, sched.HighPriority)
	}
}

// TestInheritOnDenied: when a revocation is denied (non-revocable section),
// the InheritOnDenied fallback boosts the owner instead.
func TestInheritOnDenied(t *testing.T) {
	rt := New(Config{
		Mode:            Revocation,
		InheritOnDenied: true,
		Sched:           sched.Config{Quantum: 50, Policy: sched.PriorityRR},
	})
	m := rt.NewMonitor("M")
	var boosted sched.Priority
	rt.Spawn("low", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			tk.Native("irrevocable", nil)
			tk.Work(500)
			boosted = tk.Priority()
		})
	})
	rt.Spawn("high", sched.HighPriority, func(tk *Task) {
		tk.Sleep(10)
		tk.Synchronized(m, func() {})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if boosted != sched.HighPriority {
		t.Fatalf("owner priority = %d, want boosted to %d after denial", boosted, sched.HighPriority)
	}
}

// TestDeadlockLivelockGuard: two threads that deadlock repeatedly must
// converge (bounded rollbacks) thanks to victim selection + backoff.
func TestDeadlockLivelockGuard(t *testing.T) {
	rt := New(Config{
		Mode:              Revocation,
		DeadlockDetection: true,
		DeadlockBackoff:   40,
		Sched:             sched.Config{Quantum: 10, Seed: 3},
	})
	l1 := rt.NewMonitor("L1")
	l2 := rt.NewMonitor("L2")
	for i := 0; i < 2; i++ {
		a, b := l1, l2
		if i == 1 {
			a, b = l2, l1
		}
		rt.Spawn(fmt.Sprintf("T%d", i), sched.NormPriority, func(tk *Task) {
			for k := 0; k < 5; k++ {
				tk.Synchronized(a, func() {
					tk.Work(30)
					tk.Synchronized(b, func() {
						tk.Work(5)
					})
				})
			}
		})
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Rollbacks > 100 {
		t.Fatalf("livelock suspected: %d rollbacks", st.Rollbacks)
	}
}

// TestVolatileObjectFieldDependency: volatile object fields participate in
// dependency tracking like volatile statics.
func TestVolatileObjectFieldDependency(t *testing.T) {
	rt := New(Config{Mode: Revocation, TrackDependencies: true, Sched: sched.Config{Quantum: 50}})
	h := rt.Heap()
	o := h.AllocObject("C", heap.FieldSpec{Name: "vol", Volatile: true})
	m := rt.NewMonitor("M")
	var order []string
	rt.Spawn("T", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			tk.WriteField(o, 0, 1)
			tk.Work(800)
			order = append(order, "T")
		})
	})
	rt.Spawn("T'", sched.NormPriority, func(tk *Task) {
		tk.Work(30)
		tk.ReadField(o, 0)
	})
	rt.Spawn("Th", sched.HighPriority, func(tk *Task) {
		tk.Work(100)
		tk.Synchronized(m, func() { order = append(order, "Th") })
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "T" {
		t.Fatalf("order = %v: revocation after observed volatile write", order)
	}
}

// TestNotifyIsRevocable (§2.2): a notify followed by rollback behaves as a
// spurious wakeup; the waiting thread re-checks its condition and keeps
// waiting, and the system completes once a real notify arrives.
func TestNotifyIsRevocable(t *testing.T) {
	rt := New(Config{Mode: Revocation, TrackDependencies: true, Sched: sched.Config{Quantum: 40}})
	h := rt.Heap()
	flag := h.DefineStatic("flag", false, 0)
	cond := rt.NewMonitor("cond")
	work := rt.NewMonitor("work")
	var consumerDone bool
	rt.Spawn("consumer", sched.HighPriority, func(tk *Task) {
		tk.Work(5)
		tk.Synchronized(cond, func() {
			for tk.ReadStatic(flag) == 0 {
				tk.Wait(cond)
			}
		})
		consumerDone = true
	})
	// low sets the flag and notifies inside a *nested* section under
	// "work"; a revocation of "work" would roll back the flag write but
	// the notify stays delivered — a legal spurious wakeup.
	rt.Spawn("low", sched.LowPriority, func(tk *Task) {
		tk.Synchronized(work, func() {
			tk.Synchronized(cond, func() {
				tk.Notify(cond) // early notify, flag still 0: spurious for consumer
			})
			tk.Work(600)
		})
		tk.Synchronized(cond, func() {
			tk.WriteStatic(flag, 1)
			tk.Notify(cond)
		})
	})
	rt.Spawn("high", sched.HighPriority, func(tk *Task) {
		tk.Work(50)
		tk.Synchronized(work, func() {}) // revokes low's "work" section
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !consumerDone {
		t.Fatal("consumer never completed")
	}
}

// TestMonitorForIsStable: the same object maps to the same monitor.
func TestMonitorForIsStable(t *testing.T) {
	rt := New(Config{})
	o := rt.Heap().AllocPlain("C", 1)
	if rt.MonitorFor(o) != rt.MonitorFor(o) {
		t.Fatal("MonitorFor not stable")
	}
	if len(rt.Monitors()) != 1 {
		t.Fatal("monitor registered twice")
	}
}

// TestTaskFinishInsideSectionPanics: leaking a section is a programming
// error surfaced loudly.
func TestTaskFinishInsideSectionPanics(t *testing.T) {
	rt := New(Config{Mode: Revocation})
	m := rt.NewMonitor("M")
	type leak struct{ Task *Task }
	_ = leak{}
	rt.Spawn("bad", sched.NormPriority, func(tk *Task) {
		// Enter without exiting by calling the internal path: simulate by
		// panicking out of the section body with a non-rollback panic.
		defer func() { recover() }()
		tk.Synchronized(m, func() { panic("user panic") })
	})
	err := rt.Run()
	if err == nil {
		t.Fatal("expected error from leaked section / user panic")
	}
}

// TestStatsAccessors exercises remaining introspection paths.
func TestStatsAccessors(t *testing.T) {
	var rec trace.Recorder
	rt := New(Config{Mode: Revocation, TrackDependencies: true, Tracer: &rec, Sched: sched.Config{Quantum: 30}})
	m := rt.NewMonitor("M")
	tk0 := rt.Spawn("a", sched.NormPriority, func(tk *Task) {
		if tk.Name() != "a" || tk.Priority() != sched.NormPriority {
			t.Error("task introspection wrong")
		}
		if tk.InSection() || tk.Depth() != 0 {
			t.Error("section state wrong outside section")
		}
		tk.Synchronized(m, func() {
			if !tk.InSection() || tk.Depth() != 1 {
				t.Error("section state wrong inside section")
			}
			tk.YieldPoint()
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if tk0.Thread() == nil || tk0.Rollbacks() != 0 {
		t.Error("task accessors wrong")
	}
	if len(rt.Tasks()) != 1 {
		t.Error("Tasks() wrong")
	}
	if rt.Mode() != Revocation {
		t.Error("Mode() wrong")
	}
	if rt.Config().CostRead != 1 {
		t.Error("Config defaults not filled")
	}
}

// TestModeAndDetectStrings covers the String methods.
func TestModeAndDetectStrings(t *testing.T) {
	if Unmodified.String() != "unmodified" || Revocation.String() != "revocation" {
		t.Error("mode strings")
	}
	if DetectOnAcquire.String() != "on-acquire" || DetectPeriodic.String() != "periodic" || DetectBoth.String() != "both" {
		t.Error("detect strings")
	}
	if Mode(9).String() == "" || DetectMode(9).String() == "" {
		t.Error("unknown strings")
	}
}

// TestNoCostsMode: with NoCosts the virtual clock only moves via explicit
// sleeps, supporting pure wall-clock micro-benchmarks.
func TestNoCostsMode(t *testing.T) {
	rt := New(Config{Mode: Revocation, NoCosts: true})
	o := rt.Heap().AllocPlain("C", 1)
	m := rt.NewMonitor("M")
	rt.Spawn("a", sched.NormPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			for i := 0; i < 100; i++ {
				tk.WriteField(o, 0, heap.Word(i))
			}
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Now() != 0 {
		t.Fatalf("clock = %d, want 0 under NoCosts", rt.Now())
	}
}

// TestHighPriorityUpdatesAreLoggedToo (§4.1 fairness): the modified VM logs
// high-priority threads' updates as well.
func TestHighPriorityUpdatesAreLoggedToo(t *testing.T) {
	rt := New(Config{Mode: Revocation, Sched: sched.Config{Quantum: 30}})
	o := rt.Heap().AllocPlain("C", 1)
	m := rt.NewMonitor("M")
	rt.Spawn("high", sched.HighPriority, func(tk *Task) {
		tk.Synchronized(m, func() {
			tk.WriteField(o, 0, 1)
		})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().EntriesLogged != 1 {
		t.Fatalf("EntriesLogged = %d, want 1", rt.Stats().EntriesLogged)
	}
}

// TestStoresOutsideSectionsNotLogged: the barrier fast path skips logging
// outside synchronized sections.
func TestStoresOutsideSectionsNotLogged(t *testing.T) {
	rt := New(Config{Mode: Revocation})
	o := rt.Heap().AllocPlain("C", 1)
	rt.Spawn("a", sched.NormPriority, func(tk *Task) {
		tk.WriteField(o, 0, 5)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.EntriesLogged != 0 {
		t.Fatalf("EntriesLogged = %d, want 0", st.EntriesLogged)
	}
	if st.BarrierFastPaths != 1 {
		t.Fatalf("BarrierFastPaths = %d, want 1", st.BarrierFastPaths)
	}
}
