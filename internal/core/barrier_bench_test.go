// Barrier micro-benchmarks: the §3.1.2 cost model assumes the compiler-
// injected write barrier is a handful of instructions. These pin the
// wall-clock cost of the three barrier families' steady state (NoCosts mode
// so the virtual clock never interferes) and of a full rollback cycle.
//
// Run with -benchmem: the steady-state store barrier must report 0 allocs/op
// (acceptance criterion of the shadow-metadata fast path).
package core_test

import (
	"testing"

	"repro/internal/bench"
)

// BenchmarkWriteBarrier measures the logging store barrier at steady state:
// a synchronized section cyclically re-writing the same 64 object fields
// with dependency tracking on. After the first lap every store hits an
// already-logged, already-registered slot.
func BenchmarkWriteBarrier(b *testing.B) { bench.WriteBarrierBench(b) }

// BenchmarkReadBarrier measures the dependency-checking read barrier while
// another thread has speculative writes outstanding, so the §2.2 per-read
// location check cannot be skipped by the HasForeign fast path.
func BenchmarkReadBarrier(b *testing.B) { bench.ReadBarrierBench(b) }

// BenchmarkRollback measures one full revocation cycle — request, reverse
// log replay, monitor handoff — for a section that wrote 100 slots 10 times
// each (first-write-wins keeps the replay at 100 entries, not 1000).
func BenchmarkRollback(b *testing.B) { bench.RollbackBench(b) }
