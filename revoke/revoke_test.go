package revoke_test

import (
	"testing"

	"repro/revoke"
)

// TestQuickstart runs the package-documentation example end to end.
func TestQuickstart(t *testing.T) {
	rt := revoke.NewRuntime(revoke.Config{Mode: revoke.Revocation})
	acct := rt.Heap().AllocObject("Account", revoke.FieldSpec{Name: "balance"})
	m := rt.MonitorFor(acct)
	rt.Spawn("worker", revoke.LowPriority, func(tk *revoke.Task) {
		tk.Synchronized(m, func() {
			v := tk.ReadField(acct, 0)
			tk.Work(1000)
			tk.WriteField(acct, 0, v+1)
		})
	})
	rt.Spawn("urgent", revoke.HighPriority, func(tk *revoke.Task) {
		tk.Work(10)
		tk.Synchronized(m, func() { tk.WriteField(acct, 0, 100) })
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// worker was revoked and re-executed after urgent: 100 + 1.
	if got := acct.Get(0); got != 101 {
		t.Fatalf("balance = %d, want 101", got)
	}
	if rt.Stats().Rollbacks == 0 {
		t.Fatal("no rollback occurred")
	}
}

// TestNewRevocationRuntime checks the preset enables the full feature set.
func TestNewRevocationRuntime(t *testing.T) {
	rt := revoke.NewRevocationRuntime(revoke.SchedConfig{Quantum: 100})
	cfg := rt.Config()
	if cfg.Mode != revoke.Revocation || !cfg.TrackDependencies || !cfg.DeadlockDetection {
		t.Fatalf("preset config wrong: %+v", cfg)
	}
}

// TestNewBaseline builds every protocol.
func TestNewBaseline(t *testing.T) {
	for _, p := range []revoke.Protocol{
		revoke.ProtocolUnmodified, revoke.ProtocolInheritance,
		revoke.ProtocolCeiling, revoke.ProtocolRevocation,
	} {
		rt := revoke.NewBaseline(p, revoke.SchedConfig{})
		done := false
		rt.Spawn("t", revoke.NormPriority, func(tk *revoke.Task) { done = true })
		if err := rt.Run(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !done {
			t.Fatalf("%v: body did not run", p)
		}
	}
}

// TestTraceRecorderIntegration wires a recorder through the public API.
func TestTraceRecorderIntegration(t *testing.T) {
	var rec revoke.TraceRecorder
	rt := revoke.NewRuntime(revoke.Config{Mode: revoke.Revocation, Tracer: &rec})
	m := rt.NewMonitor("m")
	rt.Spawn("a", revoke.NormPriority, func(tk *revoke.Task) {
		tk.Synchronized(m, func() {})
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no events recorded")
	}
}
