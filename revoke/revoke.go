// Package revoke is the public API of the reproduction of
// "Preemption-Based Avoidance of Priority Inversion for Java" (Welc,
// Hosking, Jagannathan; ICPP 2004): revocable synchronized sections over a
// deterministic user-level virtual machine.
//
// A Runtime hosts simulated threads with Java-style priorities executing
// over a simulated heap. Synchronized sections are speculative: in
// Revocation mode, when a high-priority thread needs a monitor held by a
// low-priority thread, the holder is preempted at its next yield point, its
// updates are rolled back from a write-barrier-maintained undo log, the
// monitor is handed to the high-priority thread, and the aborted section
// re-executes later — externally as if it never ran. The same machinery
// detects and breaks monitor deadlocks. Java-memory-model consistency is
// preserved by marking monitors non-revocable when rollback could expose
// values other threads were allowed to observe (§2.2 of the paper).
//
// Quick start:
//
//	rt := revoke.NewRuntime(revoke.Config{Mode: revoke.Revocation})
//	acct := rt.Heap().AllocObject("Account", heap.FieldSpec{Name: "balance"})
//	m := rt.MonitorFor(acct)
//	rt.Spawn("worker", revoke.LowPriority, func(t *revoke.Task) {
//		t.Synchronized(m, func() {
//			v := t.ReadField(acct, 0)
//			t.Work(1000) // long computation inside the section
//			t.WriteField(acct, 0, v+1)
//		})
//	})
//	rt.Spawn("urgent", revoke.HighPriority, func(t *revoke.Task) {
//		t.Synchronized(m, func() { t.WriteField(acct, 0, 0) })
//	})
//	if err := rt.Run(); err != nil { ... }
//
// Virtual time: every shared-data operation advances a deterministic tick
// clock, every operation is a yield point, and exactly one thread runs at a
// time — the uniprocessor, pseudo-preemptive setting of the paper's Jikes
// RVM implementation. Runs are bit-reproducible for a fixed Config.
//
// The package re-exports the internal building blocks so downstream code
// can use the heap, monitors, scheduler and statistics directly.
package revoke

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/monitor"
	"repro/internal/race"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Core runtime types.
type (
	// Runtime hosts a simulated VM instance. See core.Runtime.
	Runtime = core.Runtime
	// Task is one simulated thread. See core.Task.
	Task = core.Task
	// Config parameterizes a Runtime. See core.Config.
	Config = core.Config
	// Stats aggregates runtime counters. See core.Stats.
	Stats = core.Stats
	// Mode selects the VM behaviour (Unmodified or Revocation).
	Mode = core.Mode
	// DetectMode selects when inversion is detected.
	DetectMode = core.DetectMode
)

// Substrate types.
type (
	// Monitor is a Java-style monitor with prioritized entry queues.
	Monitor = monitor.Monitor
	// Heap is the simulated shared-memory store.
	Heap = heap.Heap
	// Object is a heap object with named slots.
	Object = heap.Object
	// Array is a heap array of words.
	Array = heap.Array
	// Word is the contents of one heap slot.
	Word = heap.Word
	// FieldSpec declares an object field at allocation.
	FieldSpec = heap.FieldSpec
	// Priority is a thread priority (MinPriority..MaxPriority).
	Priority = sched.Priority
	// SchedConfig configures the scheduler (quantum, policy, seed).
	SchedConfig = sched.Config
	// Policy selects the dispatch discipline.
	Policy = sched.Policy
	// Ticks is a span of virtual time.
	Ticks = simtime.Ticks
	// TraceEvent is one runtime event; collect them with a TraceRecorder.
	TraceEvent = trace.Event
	// TraceRecorder records runtime events for inspection.
	TraceRecorder = trace.Recorder
	// TraceSink receives runtime events.
	TraceSink = trace.Sink
	// Protocol names a lock-management discipline for baselines.
	Protocol = baseline.Protocol
	// RaceDetector is the rollback-aware dynamic data-race sanitizer;
	// plug one into Config.Race. See internal/race.
	RaceDetector = race.Detector
	// RaceReport is one confirmed dynamic data race.
	RaceReport = race.Report
)

// VM modes.
const (
	// Unmodified is the paper's reference VM: blocking monitors, no
	// logging, no revocation.
	Unmodified = core.Unmodified
	// Revocation is the paper's contribution: revocable synchronized
	// sections with preemption-based inversion avoidance.
	Revocation = core.Revocation
)

// Detection strategies (§1.1: "either at lock acquisition, or periodically
// in the background").
const (
	DetectOnAcquire = core.DetectOnAcquire
	DetectPeriodic  = core.DetectPeriodic
	DetectBoth      = core.DetectBoth
)

// Thread priorities (the Java 1..10 range).
const (
	MinPriority  = sched.MinPriority
	LowPriority  = sched.LowPriority
	NormPriority = sched.NormPriority
	HighPriority = sched.HighPriority
	MaxPriority  = sched.MaxPriority
)

// Scheduler policies.
const (
	// RoundRobin dispatches in FIFO order ignoring priorities, like the
	// Jikes RVM scheduler the paper builds on.
	RoundRobin = sched.RoundRobin
	// PriorityRR dispatches the highest-priority runnable thread,
	// round-robin within a level.
	PriorityRR = sched.PriorityRR
)

// Baseline protocols for comparison (§1, §5).
const (
	ProtocolUnmodified  = baseline.Unmodified
	ProtocolInheritance = baseline.Inheritance
	ProtocolCeiling     = baseline.Ceiling
	ProtocolRevocation  = baseline.Revocation
)

// NewRuntime creates a runtime with the given configuration. Zero-value
// cost fields default to 1 tick per shared-data operation.
func NewRuntime(cfg Config) *Runtime { return core.New(cfg) }

// NewBaseline creates a runtime configured for one of the comparison
// protocols over the shared scheduler configuration.
func NewBaseline(p Protocol, schedCfg SchedConfig) *Runtime { return baseline.New(p, schedCfg) }

// NewRaceDetector creates a dynamic data-race detector. Pass it as
// Config.Race, then call Finalize after Run to collect the reports.
func NewRaceDetector() *RaceDetector { return race.New() }

// NewRevocationRuntime creates a runtime with the paper's recommended
// configuration: revocation mode, acquire-time detection, JMM dependency
// tracking, and deadlock detection enabled.
func NewRevocationRuntime(schedCfg SchedConfig) *Runtime {
	return core.New(Config{
		Mode:              core.Revocation,
		Detect:            core.DetectOnAcquire,
		TrackDependencies: true,
		DeadlockDetection: true,
		Sched:             schedCfg,
	})
}
