package revoke_test

import (
	"fmt"

	"repro/revoke"
)

// Example demonstrates the paper's core mechanism: a low-priority thread's
// synchronized section is revoked when a high-priority thread needs the
// monitor, and transparently re-executes afterwards.
func Example() {
	rt := revoke.NewRuntime(revoke.Config{
		Mode:  revoke.Revocation,
		Sched: revoke.SchedConfig{Quantum: 100},
	})
	o := rt.Heap().AllocObject("Shared", revoke.FieldSpec{Name: "x"})
	m := rt.MonitorFor(o)

	rt.Spawn("low", revoke.LowPriority, func(t *revoke.Task) {
		t.Synchronized(m, func() {
			t.WriteField(o, 0, 1) // speculative
			t.Work(2000)
		})
	})
	rt.Spawn("high", revoke.HighPriority, func(t *revoke.Task) {
		t.Work(50)
		t.Synchronized(m, func() {
			fmt.Println("high sees x =", t.ReadField(o, 0))
		})
	})
	if err := rt.Run(); err != nil {
		fmt.Println("error:", err)
		return
	}
	st := rt.Stats()
	fmt.Println("rollbacks:", st.Rollbacks, "re-executions:", st.Reexecutions)
	fmt.Println("final x =", o.Get(0))
	// Output:
	// high sees x = 0
	// rollbacks: 1 re-executions: 1
	// final x = 1
}

// Example_deadlock shows automatic deadlock resolution: two threads
// acquire two monitors in opposite orders; the runtime detects the cycle,
// rolls one thread back and lets both complete.
func Example_deadlock() {
	rt := revoke.NewRevocationRuntime(revoke.SchedConfig{Quantum: 100})
	a := rt.NewMonitor("A")
	b := rt.NewMonitor("B")

	rt.Spawn("t1", revoke.NormPriority, func(t *revoke.Task) {
		t.Synchronized(a, func() {
			t.Work(500)
			t.Synchronized(b, func() {})
		})
	})
	rt.Spawn("t2", revoke.NormPriority, func(t *revoke.Task) {
		t.Synchronized(b, func() {
			t.Work(500)
			t.Synchronized(a, func() {})
		})
	})
	if err := rt.Run(); err != nil {
		fmt.Println("error:", err)
		return
	}
	st := rt.Stats()
	fmt.Println("deadlocks detected:", st.DeadlocksDetected, "broken:", st.DeadlocksBroken)
	// Output:
	// deadlocks detected: 1 broken: 1
}

// Example_nonRevocable shows §2.2: a native call inside a section makes it
// non-revocable, so a later revocation request is denied and the
// high-priority thread waits instead.
func Example_nonRevocable() {
	rt := revoke.NewRuntime(revoke.Config{
		Mode:  revoke.Revocation,
		Sched: revoke.SchedConfig{Quantum: 100},
	})
	m := rt.NewMonitor("M")
	rt.Spawn("low", revoke.LowPriority, func(t *revoke.Task) {
		t.Synchronized(m, func() {
			t.Native("println", nil) // irrevocable effect
			t.Work(1000)
		})
	})
	rt.Spawn("high", revoke.HighPriority, func(t *revoke.Task) {
		t.Work(50)
		t.Synchronized(m, func() {})
	})
	if err := rt.Run(); err != nil {
		fmt.Println("error:", err)
		return
	}
	st := rt.Stats()
	fmt.Println("rollbacks:", st.Rollbacks, "denied:", st.RevocationsDenied)
	// Output:
	// rollbacks: 0 denied: 1
}

// Example_baselines runs the same contended workload under the comparison
// protocols.
func Example_baselines() {
	for _, proto := range []revoke.Protocol{
		revoke.ProtocolUnmodified, revoke.ProtocolRevocation,
	} {
		rt := revoke.NewBaseline(proto, revoke.SchedConfig{Quantum: 100})
		m := rt.NewMonitor("M")
		var order []string
		rt.Spawn("low", revoke.LowPriority, func(t *revoke.Task) {
			t.Synchronized(m, func() {
				t.Work(1000)
				order = append(order, "low")
			})
		})
		rt.Spawn("high", revoke.HighPriority, func(t *revoke.Task) {
			t.Work(50)
			t.Synchronized(m, func() {
				order = append(order, "high")
			})
		})
		if err := rt.Run(); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%v: completion order %v\n", proto, order)
	}
	// Output:
	// unmodified: completion order [low high]
	// revocation: completion order [high low]
}
