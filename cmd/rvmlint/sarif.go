package main

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/analysis"
)

// SARIF 2.1.0 export: the same report model -json serializes, reshaped
// into one run with one result per finding so CI code-scanning uploads can
// annotate the .rvm sources. Only the subset of the schema the findings
// need is modelled.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID   string `json:"id"`
	Desc struct {
		Text string `json:"text"`
	} `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical  `json:"physicalLocation"`
	LogicalLocations []sarifLogical `json:"logicalLocations,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifLogical struct {
	FullyQualifiedName string `json:"fullyQualifiedName"`
}

var sarifRules = []struct{ id, desc, level string }{
	{"lock-order-cycle", "Locks form a strongly connected acquisition-order component: two threads can acquire them in conflicting orders.", "warning"},
	{"behavioral-deadlock", "The behavioral contract pass found a circularity on the saturated thread system (spawn multiplicity and field/array lock aliasing included).", "warning"},
	{"candidate-race", "Two threads can access the slot with at least one write and no common must-held monitor.", "warning"},
	{"volatile-bypass", "An access pattern defeats the volatile exemption on the slot.", "warning"},
	{"escaping-lock", "An allocation-site lock escapes its creating thread: the scratch object is published, so its monitors stay real.", "warning"},
	{"confined-monitor", "The escape pass proved the lock thread-confined; its certified monitorenter/monitorexit pairs compile to no-ops.", "note"},
	{"race-free-slot", "Every thread-reachable access to the slot is certified race-free; the dynamic detector skips its checks.", "note"},
}

// sarifLevel returns the level declared for a rule id in sarifRules, so
// result emission can never disagree with the rule table.
func sarifLevel(rule string) string {
	for _, r := range sarifRules {
		if r.id == rule {
			return r.level
		}
	}
	return "warning"
}

func sarifLoc(file string, positions ...analysis.Pos) []sarifLocation {
	var out []sarifLocation
	for _, p := range positions {
		out = append(out, sarifLocation{
			PhysicalLocation: sarifPhysical{ArtifactLocation: sarifArtifact{URI: file}},
			LogicalLocations: []sarifLogical{{FullyQualifiedName: p.String()}},
		})
	}
	if out == nil {
		out = append(out, sarifLocation{PhysicalLocation: sarifPhysical{ArtifactLocation: sarifArtifact{URI: file}}})
	}
	return out
}

func cycleResult(rule, file string, c analysis.Cycle) sarifResult {
	var sites []analysis.Pos
	for _, e := range c.Edges {
		sites = append(sites, e.At)
	}
	return sarifResult{
		RuleID: rule,
		Level:  sarifLevel(rule),
		Message: sarifMessage{Text: fmt.Sprintf("potential deadlock: cycle %s (%d witness acquisitions)",
			strings.Join(c.Locks, " <-> "), len(c.Edges))},
		Locations: sarifLoc(file, sites...),
	}
}

func writeSARIF(w io.Writer, reports []fileReport) error {
	run := sarifRun{Results: []sarifResult{}}
	run.Tool.Driver.Name = "rvmlint"
	for _, r := range sarifRules {
		rule := sarifRule{ID: r.id}
		rule.Desc.Text = r.desc
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, rule)
	}
	for _, rep := range reports {
		f := rep.Facts
		for _, c := range f.Cycles {
			run.Results = append(run.Results, cycleResult("lock-order-cycle", rep.File, c))
		}
		for _, c := range f.Deadlocks {
			run.Results = append(run.Results, cycleResult("behavioral-deadlock", rep.File, c))
		}
		for _, race := range f.Races {
			sites := append(append([]analysis.Pos{}, race.Writes...), race.Reads...)
			run.Results = append(run.Results, sarifResult{
				RuleID: "candidate-race",
				Level:  sarifLevel("candidate-race"),
				Message: sarifMessage{Text: fmt.Sprintf("candidate data race on %s between threads %s",
					race.Slot, strings.Join(race.Threads, ", "))},
				Locations: sarifLoc(rep.File, sites...),
			})
		}
		for _, v := range f.Bypasses {
			run.Results = append(run.Results, sarifResult{
				RuleID:    "volatile-bypass",
				Level:     sarifLevel("volatile-bypass"),
				Message:   sarifMessage{Text: fmt.Sprintf("volatile bypass (%s) on %s", v.Kind, v.Slot)},
				Locations: sarifLoc(rep.File, v.Pos),
			})
		}
		for _, c := range f.Confinements {
			switch {
			case strings.HasPrefix(c.Lock, "new:") && c.Class != analysis.ConfinedClass:
				run.Results = append(run.Results, sarifResult{
					RuleID: "escaping-lock",
					Level:  sarifLevel("escaping-lock"),
					Message: sarifMessage{Text: fmt.Sprintf("allocation-site lock %s escapes its thread: %s",
						c.Lock, c.Reason)},
					Locations: sarifLoc(rep.File, c.Sites...),
				})
			case c.Class == analysis.ConfinedClass:
				run.Results = append(run.Results, sarifResult{
					RuleID: "confined-monitor",
					Level:  sarifLevel("confined-monitor"),
					Message: sarifMessage{Text: fmt.Sprintf("lock %s is thread-confined (%s); certified monitors elide whole",
						c.Lock, c.Reason)},
					Locations: sarifLoc(rep.File, c.Sites...),
				})
			}
		}
		for _, cert := range f.Certs {
			if cert.Kind != analysis.CertRaceFree {
				continue
			}
			run.Results = append(run.Results, sarifResult{
				RuleID: "race-free-slot",
				Level:  sarifLevel("race-free-slot"),
				Message: sarifMessage{Text: fmt.Sprintf("slot %s is certified race-free; dynamic checks are skipped",
					cert.Slot)},
				Locations: sarifLoc(rep.File, cert.Pos),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	})
}
