// Command rvmlint runs the whole-program static analysis framework
// (internal/analysis) over assembled bytecode programs and reports its
// findings without executing anything:
//
//   - synchronized sections and their statically inferred revocability
//     (a section containing a reachable native call, volatile read, or
//     wait can never be rolled back at runtime);
//   - potential deadlocks: cycles in the lock-order graph, with the
//     acquisition sites as method@pc witnesses;
//   - write-barrier elision totals: how many store instructions the
//     analysis proves never need the undo-logging slow path;
//   - with -races, candidate data races from the static lockset pass:
//     slots reachable by two threads with at least one write and no common
//     must-held monitor, plus volatile-bypass access patterns;
//   - with -deadlocks, the behavioral contract pass's findings: canonical
//     deadlock cycles under the finer behavioral lock naming (now closed
//     under recursive contract inference), including spawn-multiplicity,
//     field-aliased and recursion-only circularities the SCC pass cannot
//     see;
//   - with -escape, the thread-confinement classification of every
//     acquired multi-instance lock, the certified whole-monitor elision
//     sites, and the certified race-free slots.
//
// Usage:
//
//	rvmlint [-json] [-sarif] [-races] [-deadlocks] [-escape]
//	        [-fail-on-cycle] [-fail-on-race] [-fail-on-deadlock]
//	        [-fail-on-escape-regression]
//	        program.rvm [more.rvm ...]
//
// (The usage string printed on a bad invocation is generated from the
// registered flag set, so it can never drift from the table above —
// TestUsageMentionsEveryFlag pins both.)
//
// -json emits machine-readable output for CI (race and confinement
// findings included); -sarif emits the same findings as a SARIF 2.1.0 log
// for code-scanning upload. -fail-on-cycle exits non-zero when any
// lock-order cycle is found, -fail-on-race when any candidate race is,
// -fail-on-deadlock when the behavioral pass reports anything, and
// -fail-on-escape-regression when any allocation-site lock fails
// confinement, making the tool usable as a build gate. Every run also
// re-verifies the permission certificates the analysis issued
// (analysis.Facts.VerifyCertificates): an undischarged elision obligation
// is a hard error, the same gate interp.NewEnv applies.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/bytecode"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// usageLine builds the one-line usage synopsis from the registered flag
// set itself, so the printed usage can never drift from the flags the
// parser actually accepts. TestUsageMentionsEveryFlag pins the property.
func usageLine(fs *flag.FlagSet) string {
	line := "usage: " + fs.Name()
	fs.VisitAll(func(f *flag.Flag) {
		line += " [-" + f.Name + "]"
	})
	return line + " program.rvm [more.rvm ...]"
}

type fileReport struct {
	File  string          `json:"file"`
	Facts *analysis.Facts `json:"facts"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rvmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	sarifOut := fs.Bool("sarif", false, "emit the findings as a SARIF 2.1.0 log")
	races := fs.Bool("races", false, "print the static lockset pass's candidate data races")
	deadlocks := fs.Bool("deadlocks", false, "print the behavioral deadlock pass's findings")
	escape := fs.Bool("escape", false, "print the escape pass's thread-confinement classification and elision sites")
	failOnCycle := fs.Bool("fail-on-cycle", false, "exit 1 when a lock-order cycle is found")
	failOnRace := fs.Bool("fail-on-race", false, "exit 1 when a candidate data race is found")
	failOnDeadlock := fs.Bool("fail-on-deadlock", false, "exit 1 when the behavioral pass reports a deadlock")
	failOnEscape := fs.Bool("fail-on-escape-regression", false, "exit 1 when an allocation-site lock fails thread confinement")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, usageLine(fs))
		fs.PrintDefaults()
		return 2
	}

	exit := 0
	var reports []fileReport
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "rvmlint:", err)
			return 1
		}
		prog, err := bytecode.Assemble(string(src))
		if err != nil {
			fmt.Fprintf(stderr, "rvmlint: %s: %v\n", path, err)
			return 1
		}
		facts, err := analysis.Analyze(prog)
		if err != nil {
			fmt.Fprintf(stderr, "rvmlint: %s: %v\n", path, err)
			return 1
		}
		// The soundness gate: every optimization the facts license must be
		// a discharged proof obligation. An uncertified elision here is the
		// same hard error interp.NewEnv raises before running the program.
		if err := facts.VerifyCertificates(); err != nil {
			fmt.Fprintf(stderr, "rvmlint: %s: %v\n", path, err)
			return 1
		}
		if *jsonOut || *sarifOut {
			reports = append(reports, fileReport{File: filepath.Base(path), Facts: facts})
		} else {
			fmt.Fprintf(stdout, "== %s ==\n%s", filepath.Base(path), facts.Render())
			if *races {
				fmt.Fprintf(stdout, "\n%s", facts.RenderRaces())
			}
			if *deadlocks {
				fmt.Fprintf(stdout, "\n%s", facts.RenderDeadlocks())
			}
			if *escape {
				fmt.Fprintf(stdout, "\n%s", facts.RenderEscape())
			}
			fmt.Fprintln(stdout)
		}
		if *failOnCycle && len(facts.Cycles) > 0 {
			exit = 1
		}
		if *failOnRace && len(facts.Races) > 0 {
			exit = 1
		}
		if *failOnDeadlock && len(facts.Deadlocks) > 0 {
			exit = 1
		}
		if *failOnEscape && len(facts.EscapeRegressions()) > 0 {
			exit = 1
		}
	}
	if *sarifOut {
		if err := writeSARIF(stdout, reports); err != nil {
			fmt.Fprintln(stderr, "rvmlint:", err)
			return 1
		}
	} else if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(stderr, "rvmlint:", err)
			return 1
		}
	}
	return exit
}
