// Command rvmlint runs the whole-program static analysis framework
// (internal/analysis) over assembled bytecode programs and reports its
// findings without executing anything:
//
//   - synchronized sections and their statically inferred revocability
//     (a section containing a reachable native call, volatile read, or
//     wait can never be rolled back at runtime);
//   - potential deadlocks: cycles in the lock-order graph, with the
//     acquisition sites as method@pc witnesses;
//   - write-barrier elision totals: how many store instructions the
//     analysis proves never need the undo-logging slow path;
//   - with -races, candidate data races from the static lockset pass:
//     slots reachable by two threads with at least one write and no common
//     must-held monitor, plus volatile-bypass access patterns.
//
// Usage:
//
//	rvmlint [-json] [-races] [-fail-on-cycle] [-fail-on-race] program.rvm [more.rvm ...]
//
// -json emits machine-readable output for CI (race findings included);
// -fail-on-cycle exits non-zero when any lock-order cycle is found and
// -fail-on-race when any candidate race is, making the tool usable as a
// build gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/bytecode"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

type fileReport struct {
	File  string          `json:"file"`
	Facts *analysis.Facts `json:"facts"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rvmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	races := fs.Bool("races", false, "print the static lockset pass's candidate data races")
	failOnCycle := fs.Bool("fail-on-cycle", false, "exit 1 when a lock-order cycle is found")
	failOnRace := fs.Bool("fail-on-race", false, "exit 1 when a candidate data race is found")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: rvmlint [-json] [-races] [-fail-on-cycle] [-fail-on-race] program.rvm ...")
		fs.PrintDefaults()
		return 2
	}

	exit := 0
	var reports []fileReport
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "rvmlint:", err)
			return 1
		}
		prog, err := bytecode.Assemble(string(src))
		if err != nil {
			fmt.Fprintf(stderr, "rvmlint: %s: %v\n", path, err)
			return 1
		}
		facts, err := analysis.Analyze(prog)
		if err != nil {
			fmt.Fprintf(stderr, "rvmlint: %s: %v\n", path, err)
			return 1
		}
		if *jsonOut {
			reports = append(reports, fileReport{File: filepath.Base(path), Facts: facts})
		} else {
			fmt.Fprintf(stdout, "== %s ==\n%s", filepath.Base(path), facts.Render())
			if *races {
				fmt.Fprintf(stdout, "\n%s", facts.RenderRaces())
			}
			fmt.Fprintln(stdout)
		}
		if *failOnCycle && len(facts.Cycles) > 0 {
			exit = 1
		}
		if *failOnRace && len(facts.Races) > 0 {
			exit = 1
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(stderr, "rvmlint:", err)
			return 1
		}
	}
	return exit
}
