package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden locks rvmlint's text output over the example programs. Run
// with -update after an intentional output change. The racy examples are
// linted with -races so the goldens pin the static lockset findings too.
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		dir  string
		args []string
	}{
		{"lockorder", "bytecode", nil},
		{"native_section", "bytecode", nil},
		{"inversion", "bytecode", nil},
		{"counter", "racy", []string{"-races"}},
		{"volbypass", "racy", []string{"-races"}},
		{"deadlock", "deadlock", []string{"-deadlocks"}},
		{"deadlock2", "deadlock2", []string{"-deadlocks"}},
		{"aliasdl", "aliasdl", []string{"-deadlocks"}},
		{"confined", "confined", []string{"-escape"}},
		{"escaping", "escape", []string{"-escape"}},
		{"recdl", "recdl", []string{"-deadlocks"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := filepath.Join("..", "..", "examples", c.dir, c.name+".rvm")
			var out, errOut bytes.Buffer
			if code := run(append(c.args, src), &out, &errOut); code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, errOut.String())
			}
			golden := filepath.Join("testdata", c.name+".golden")
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, out.String(), want)
			}
		})
	}
}

// TestSeededFindings asserts the load-bearing findings directly, so the
// intent survives even a golden regeneration: the lockorder example must
// report a cycle, the native example a non-revocable section.
func TestSeededFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-fail-on-cycle",
		filepath.Join("..", "..", "examples", "bytecode", "lockorder.rvm"),
	}, &out, &errOut)
	if code != 1 {
		t.Errorf("-fail-on-cycle exit = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "static:A <-> static:B") {
		t.Errorf("cycle not reported:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{
		"-fail-on-cycle",
		filepath.Join("..", "..", "examples", "bytecode", "native_section.rvm"),
	}, &out, &errOut); code != 0 {
		t.Errorf("cycle-free program exited %d", code)
	}
	if !strings.Contains(out.String(), "NON-REVOCABLE") || !strings.Contains(out.String(), "native-call print") {
		t.Errorf("native section not flagged:\n%s", out.String())
	}

	out.Reset()
	code = run([]string{
		"-races", "-fail-on-race",
		filepath.Join("..", "..", "examples", "racy", "counter.rvm"),
	}, &out, &errOut)
	if code != 1 {
		t.Errorf("-fail-on-race exit = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "race: static:counter") {
		t.Errorf("counter race not reported:\n%s", out.String())
	}

	out.Reset()
	code = run([]string{
		"-races",
		filepath.Join("..", "..", "examples", "racy", "volbypass.rvm"),
	}, &out, &errOut)
	if code != 0 {
		t.Errorf("-races without -fail-on-race exited %d", code)
	}
	if !strings.Contains(out.String(), "volatile-bypass: static:flag  raw-store") {
		t.Errorf("raw-store bypass not reported:\n%s", out.String())
	}
}

// TestUsageMentionsEveryFlag: the usage synopsis printed on a bad
// invocation is generated from the registered flag set (usageLine), so
// this asserts the property directly — every flag the parser accepts must
// appear in the usage output, and nothing in the flag table can drift out
// of the printed help.
func TestUsageMentionsEveryFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-args exit = %d, want 2", code)
	}
	usage := errOut.String()
	if !strings.Contains(usage, "usage: rvmlint") {
		t.Fatalf("usage line missing:\n%s", usage)
	}
	// Enumerate the registered flags through the parser itself (a bad
	// flag makes ContinueOnError print the full defaults table), so a
	// flag added to run() without updating anything else is still checked.
	var probe bytes.Buffer
	run([]string{"-this-flag-does-not-exist"}, &out, &probe)
	for _, name := range flagNamesFromDefaults(probe.String()) {
		if !strings.Contains(usage, "[-"+name+"]") {
			t.Errorf("usage synopsis omits registered flag -%s:\n%s", name, usage)
		}
		if !strings.Contains(usage, "-"+name+"\n") && !strings.Contains(usage, "-"+name+" ") {
			t.Errorf("flag table omits -%s:\n%s", name, usage)
		}
	}
}

// flagNamesFromDefaults extracts flag names from a PrintDefaults dump
// ("  -name\n    \tusage" lines).
func flagNamesFromDefaults(dump string) []string {
	var names []string
	for _, line := range strings.Split(dump, "\n") {
		if rest, ok := strings.CutPrefix(line, "  -"); ok {
			names = append(names, strings.Fields(rest)[0])
		}
	}
	return names
}

// TestEscapeFindings pins the -escape text pass and the
// -fail-on-escape-regression gate: the confined example's lock is proved
// thread-confined (exit 0 even under the gate), while the escape example
// publishes its scratch lock to a static and must trip it.
func TestEscapeFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-escape", "-fail-on-escape-regression",
		filepath.Join("..", "..", "examples", "confined", "confined.rvm"),
	}, &out, &errOut)
	if code != 0 {
		t.Errorf("confined example tripped the escape gate (exit %d): %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "thread-confined") {
		t.Errorf("confinement proof not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "elide whole monitor at") {
		t.Errorf("elision sites not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "race-free slots: 1 certified") {
		t.Errorf("race-free certification not reported:\n%s", out.String())
	}

	out.Reset()
	code = run([]string{
		"-escape", "-fail-on-escape-regression",
		filepath.Join("..", "..", "examples", "escape", "escaping.rvm"),
	}, &out, &errOut)
	if code != 1 {
		t.Errorf("-fail-on-escape-regression exit = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "shared") || !strings.Contains(out.String(), "escapes") {
		t.Errorf("escaping lock not reported:\n%s", out.String())
	}
}

// TestBehavioralFindings pins the load-bearing behavioral-pass results on
// the deadlock corpus: the SCC pass sees only the statically named cycle,
// the behavioral pass sees all three shapes, and -fail-on-deadlock gates.
func TestBehavioralFindings(t *testing.T) {
	cases := []struct {
		path     string
		wantSCC  bool
		wantLock string
	}{
		{filepath.Join("deadlock", "deadlock.rvm"), true, "static:A <-> static:B"},
		{filepath.Join("deadlock2", "deadlock2.rvm"), false, "array:elem (multi-instance self-cycle)"},
		{filepath.Join("aliasdl", "aliasdl.rvm"), false, "field:#0 (multi-instance self-cycle)"},
	}
	for _, c := range cases {
		var out, errOut bytes.Buffer
		code := run([]string{
			"-deadlocks", "-fail-on-deadlock",
			filepath.Join("..", "..", "examples", c.path),
		}, &out, &errOut)
		if code != 1 {
			t.Errorf("%s: -fail-on-deadlock exit = %d, want 1; stderr: %s", c.path, code, errOut.String())
		}
		if !strings.Contains(out.String(), "deadlock: "+c.wantLock) {
			t.Errorf("%s: behavioral deadlock %q not reported:\n%s", c.path, c.wantLock, out.String())
		}
		gotSCC := strings.Contains(out.String(), "potential deadlocks (lock-order cycles):")
		if gotSCC != c.wantSCC {
			t.Errorf("%s: SCC cycle reported=%v, want %v:\n%s", c.path, gotSCC, c.wantSCC, out.String())
		}
	}
}

// TestSARIFOutput: -sarif emits one valid SARIF 2.1.0 log covering every
// input file, with behavioral-deadlock results only where the pass found
// something. The corpus is chosen so every registered rule kind fires at
// least once, and the schema shape is checked on every result: the rule
// id must be declared in the driver table, every result must carry an
// artifact location, and the level must be a legal SARIF kind that
// matches the rule table's declaration.
func TestSARIFOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-sarif",
		filepath.Join("..", "..", "examples", "bytecode", "lockorder.rvm"),
		filepath.Join("..", "..", "examples", "deadlock2", "deadlock2.rvm"),
		filepath.Join("..", "..", "examples", "racy", "counter.rvm"),
		filepath.Join("..", "..", "examples", "racy", "volbypass.rvm"),
		filepath.Join("..", "..", "examples", "confined", "confined.rvm"),
		filepath.Join("..", "..", "examples", "escape", "escaping.rvm"),
		filepath.Join("..", "..", "examples", "recdl", "recdl.rvm"),
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("bad SARIF JSON: %v\n%s", err, out.String())
	}
	if log.Schema != "https://json.schemastore.org/sarif-2.1.0.json" {
		t.Errorf("$schema = %q", log.Schema)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q runs %d, want 2.1.0 with one run", log.Version, len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "rvmlint" || len(r.Tool.Driver.Rules) == 0 {
		t.Fatalf("driver = %+v", r.Tool.Driver)
	}
	declared := map[string]bool{}
	for _, rule := range r.Tool.Driver.Rules {
		declared[rule.ID] = true
	}
	legalLevel := map[string]bool{"note": true, "warning": true, "error": true}
	byRule := map[string][]string{}
	for _, res := range r.Results {
		if !declared[res.RuleID] {
			t.Errorf("result rule %q not declared in the driver rule table", res.RuleID)
		}
		if !legalLevel[res.Level] {
			t.Errorf("result %s has illegal level %q", res.RuleID, res.Level)
		}
		if want := sarifLevel(res.RuleID); res.Level != want {
			t.Errorf("result %s level %q disagrees with rule table %q", res.RuleID, res.Level, want)
		}
		if len(res.Locations) == 0 {
			t.Errorf("result %s has no locations", res.RuleID)
		}
		for _, loc := range res.Locations {
			if loc.PhysicalLocation.ArtifactLocation.URI == "" {
				t.Errorf("result %s has a location without an artifact URI", res.RuleID)
			}
			byRule[res.RuleID] = append(byRule[res.RuleID], loc.PhysicalLocation.ArtifactLocation.URI)
		}
	}
	has := func(rule, file string) bool {
		for _, f := range byRule[rule] {
			if f == file {
				return true
			}
		}
		return false
	}
	if !has("lock-order-cycle", "lockorder.rvm") {
		t.Errorf("lockorder cycle missing from SARIF: %v", byRule)
	}
	if !has("behavioral-deadlock", "deadlock2.rvm") {
		t.Errorf("deadlock2 behavioral finding missing from SARIF: %v", byRule)
	}
	if !has("behavioral-deadlock", "recdl.rvm") {
		t.Errorf("recursion-only deadlock missing from SARIF: %v", byRule)
	}
	if has("behavioral-deadlock", "counter.rvm") {
		t.Errorf("spurious behavioral finding for counter.rvm: %v", byRule)
	}
	if !has("candidate-race", "counter.rvm") {
		t.Errorf("counter race missing from SARIF: %v", byRule)
	}
	if !has("volatile-bypass", "volbypass.rvm") {
		t.Errorf("volatile bypass missing from SARIF: %v", byRule)
	}
	if !has("confined-monitor", "confined.rvm") {
		t.Errorf("confined-monitor finding missing from SARIF: %v", byRule)
	}
	if !has("race-free-slot", "confined.rvm") {
		t.Errorf("race-free-slot finding missing from SARIF: %v", byRule)
	}
	if !has("escaping-lock", "escaping.rvm") {
		t.Errorf("escaping-lock finding missing from SARIF: %v", byRule)
	}
	// Every declared rule fired somewhere in this corpus — the table
	// carries no dead rules and no rule kind goes untested.
	for id := range declared {
		if len(byRule[id]) == 0 {
			t.Errorf("declared rule %q never fired over the test corpus", id)
		}
	}
}

// TestJSONOutput: -json emits one parseable report per input file with the
// fields CI consumes.
func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-json",
		filepath.Join("..", "..", "examples", "bytecode", "lockorder.rvm"),
		filepath.Join("..", "..", "examples", "bytecode", "native_section.rvm"),
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var reports []struct {
		File  string `json:"file"`
		Facts struct {
			Sections []struct {
				NonRevocable bool `json:"non_revocable"`
			} `json:"sections"`
			Cycles         []json.RawMessage `json:"cycles"`
			TotalStores    int               `json:"total_stores"`
			ElidableStores int               `json:"elidable_stores"`
		} `json:"facts"`
	}
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	if reports[0].File != "lockorder.rvm" || len(reports[0].Facts.Cycles) != 1 {
		t.Errorf("lockorder report wrong: %+v", reports[0])
	}
	nonRev := 0
	for _, s := range reports[1].Facts.Sections {
		if s.NonRevocable {
			nonRev++
		}
	}
	if reports[1].File != "native_section.rvm" || nonRev != 1 {
		t.Errorf("native_section report wrong: %+v", reports[1])
	}
	if reports[0].Facts.TotalStores == 0 || reports[0].Facts.ElidableStores == 0 {
		t.Errorf("store counters empty: %+v", reports[0].Facts)
	}
}
