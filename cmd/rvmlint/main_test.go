package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden locks rvmlint's text output over the example programs. Run
// with -update after an intentional output change. The racy examples are
// linted with -races so the goldens pin the static lockset findings too.
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		dir  string
		args []string
	}{
		{"lockorder", "bytecode", nil},
		{"native_section", "bytecode", nil},
		{"inversion", "bytecode", nil},
		{"counter", "racy", []string{"-races"}},
		{"volbypass", "racy", []string{"-races"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := filepath.Join("..", "..", "examples", c.dir, c.name+".rvm")
			var out, errOut bytes.Buffer
			if code := run(append(c.args, src), &out, &errOut); code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, errOut.String())
			}
			golden := filepath.Join("testdata", c.name+".golden")
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, out.String(), want)
			}
		})
	}
}

// TestSeededFindings asserts the load-bearing findings directly, so the
// intent survives even a golden regeneration: the lockorder example must
// report a cycle, the native example a non-revocable section.
func TestSeededFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-fail-on-cycle",
		filepath.Join("..", "..", "examples", "bytecode", "lockorder.rvm"),
	}, &out, &errOut)
	if code != 1 {
		t.Errorf("-fail-on-cycle exit = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "static:A <-> static:B") {
		t.Errorf("cycle not reported:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{
		"-fail-on-cycle",
		filepath.Join("..", "..", "examples", "bytecode", "native_section.rvm"),
	}, &out, &errOut); code != 0 {
		t.Errorf("cycle-free program exited %d", code)
	}
	if !strings.Contains(out.String(), "NON-REVOCABLE") || !strings.Contains(out.String(), "native-call print") {
		t.Errorf("native section not flagged:\n%s", out.String())
	}

	out.Reset()
	code = run([]string{
		"-races", "-fail-on-race",
		filepath.Join("..", "..", "examples", "racy", "counter.rvm"),
	}, &out, &errOut)
	if code != 1 {
		t.Errorf("-fail-on-race exit = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "race: static:counter") {
		t.Errorf("counter race not reported:\n%s", out.String())
	}

	out.Reset()
	code = run([]string{
		"-races",
		filepath.Join("..", "..", "examples", "racy", "volbypass.rvm"),
	}, &out, &errOut)
	if code != 0 {
		t.Errorf("-races without -fail-on-race exited %d", code)
	}
	if !strings.Contains(out.String(), "volatile-bypass: static:flag  raw-store") {
		t.Errorf("raw-store bypass not reported:\n%s", out.String())
	}
}

// TestJSONOutput: -json emits one parseable report per input file with the
// fields CI consumes.
func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-json",
		filepath.Join("..", "..", "examples", "bytecode", "lockorder.rvm"),
		filepath.Join("..", "..", "examples", "bytecode", "native_section.rvm"),
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var reports []struct {
		File  string `json:"file"`
		Facts struct {
			Sections []struct {
				NonRevocable bool `json:"non_revocable"`
			} `json:"sections"`
			Cycles         []json.RawMessage `json:"cycles"`
			TotalStores    int               `json:"total_stores"`
			ElidableStores int               `json:"elidable_stores"`
		} `json:"facts"`
	}
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	if reports[0].File != "lockorder.rvm" || len(reports[0].Facts.Cycles) != 1 {
		t.Errorf("lockorder report wrong: %+v", reports[0])
	}
	nonRev := 0
	for _, s := range reports[1].Facts.Sections {
		if s.NonRevocable {
			nonRev++
		}
	}
	if reports[1].File != "native_section.rvm" || nonRev != 1 {
		t.Errorf("native_section report wrong: %+v", reports[1])
	}
	if reports[0].Facts.TotalStores == 0 || reports[0].Facts.ElidableStores == 0 {
		t.Errorf("store counters empty: %+v", reports[0].Facts)
	}
}
