// Command tracecheck validates a JSONL trace produced by
// `rvmrun -trace-out FILE -trace-format=jsonl` against the rvm-trace
// schema: a leading meta line carrying the schema version and the complete
// kind vocabulary, followed by event lines with known kinds and
// non-negative timestamps. CI runs it over example traces so a schema
// drift (renamed kind, missing meta field) fails the build instead of
// silently breaking downstream consumers.
//
// Usage:
//
//	tracecheck FILE...         validate each file, report event counts
//	tracecheck -               validate standard input
//
// Exit status is 0 when every input validates, 1 otherwise.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck FILE...   (or '-' for stdin)")
		os.Exit(2)
	}
	ok := true
	for _, path := range args {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func check(path string) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	n, err := obs.ValidateJSONL(r)
	if err != nil {
		return err
	}
	fmt.Printf("%s: ok (schema v%d, %d events)\n", path, obs.SchemaVersion, n)
	return nil
}
