// Command tracecheck validates a JSONL trace produced by
// `rvmrun -trace-out FILE -trace-format=jsonl` against the rvm-trace
// schema: a leading meta line carrying the schema version and the complete
// kind vocabulary, followed by event lines with known kinds and
// non-negative timestamps. The validated events are then replayed into the
// observer, and any it drops as unjoinable (a wait-end without a start, a
// rollback for an unheld monitor) are reported — a nonzero count means the
// stream would not reconstruct faithfully. CI runs tracecheck over example
// traces so a schema drift (renamed kind, missing meta field) fails the
// build instead of silently breaking downstream consumers.
//
// Streams converted from a wrapped flight-recorder ring (`rvmfr jsonl`)
// declare in their meta line that a prefix was overwritten. On such a
// stream, dropped events are expected — they join into the missing prefix —
// so -strict reports but tolerates them; on a complete stream they still
// fail.
//
// Usage:
//
//	tracecheck [-strict] FILE...   validate each file, report event and
//	                               dropped counts
//	tracecheck [-strict] -         validate standard input
//
// Exit status is 0 when every input validates, 1 otherwise. With -strict,
// dropped events also fail the run (unless the stream declares truncation).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	strict := flag.Bool("strict", false, "exit non-zero when the observer dropped any event as unjoinable")
	flag.Parse()
	os.Exit(run(os.Stdout, os.Stderr, flag.Args(), *strict))
}

func run(out, errw io.Writer, args []string, strict bool) int {
	if len(args) == 0 {
		fmt.Fprintln(errw, "usage: tracecheck [-strict] FILE...   (or '-' for stdin)")
		return 2
	}
	code := 0
	for _, path := range args {
		if err := check(out, path, strict); err != nil {
			fmt.Fprintf(errw, "tracecheck: %s: %v\n", path, err)
			code = 1
		}
	}
	return code
}

func check(out io.Writer, path string, strict bool) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	events, info, err := obs.ParseJSONLInfo(r)
	if err != nil {
		return err
	}
	o := obs.NewObserver()
	for _, e := range events {
		o.Emit(e)
	}
	note := ""
	if info.Truncated {
		note = fmt.Sprintf(", truncated: %d lost before stream start", info.Lost)
	}
	fmt.Fprintf(out, "%s: ok (schema v%d, %d events, %d dropped%s)\n",
		path, obs.SchemaVersion, len(events), o.Dropped(), note)
	if strict && o.Dropped() > 0 && !info.Truncated {
		return fmt.Errorf("%d events dropped as unjoinable (-strict)", o.Dropped())
	}
	return nil
}
