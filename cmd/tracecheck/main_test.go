package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

func TestCheckValidAndInvalid(t *testing.T) {
	dir := t.TempDir()

	good := filepath.Join(dir, "good.jsonl")
	f, err := os.Create(good)
	if err != nil {
		t.Fatal(err)
	}
	w := obs.NewJSONLWriter(f)
	w.Emit(trace.Event{At: 1, Kind: trace.ThreadStart, Thread: "T", N: 5})
	w.Emit(trace.Event{At: 9, Kind: trace.Rollback, Thread: "T", Object: "M", N: 3})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := check(good); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"type\":\"meta\",\"v\":99}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := check(bad); err == nil {
		t.Fatal("invalid trace accepted")
	}

	if err := check(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing file accepted")
	}
}
