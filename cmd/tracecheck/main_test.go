package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

func writeTrace(t *testing.T, path string, events ...trace.Event) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := obs.NewJSONLWriter(f)
	for _, e := range events {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidAndInvalid(t *testing.T) {
	dir := t.TempDir()

	good := filepath.Join(dir, "good.jsonl")
	writeTrace(t, good,
		trace.Event{At: 1, Kind: trace.ThreadStart, Thread: "T", N: 5},
		trace.Event{At: 3, Kind: trace.MonitorAcquired, Thread: "T", Object: "M"},
		trace.Event{At: 9, Kind: trace.MonitorExit, Thread: "T", Object: "M"},
	)
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{good}, false); code != 0 {
		t.Fatalf("valid trace: exit %d, stderr %q", code, errw.String())
	}
	if !strings.Contains(out.String(), "ok (schema v") || !strings.Contains(out.String(), "3 events, 0 dropped") {
		t.Errorf("report = %q", out.String())
	}

	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"type\":\"meta\",\"v\":99}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(&out, &errw, []string{bad}, false); code != 1 {
		t.Errorf("invalid trace: exit %d, want 1", code)
	}
	if code := run(&out, &errw, []string{filepath.Join(dir, "missing.jsonl")}, false); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if code := run(&out, &errw, nil, false); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
}

// TestRunStrictDropped pins the -strict contract: a schema-valid stream the
// observer cannot fully join (here a wait-end with no wait-start) passes by
// default but fails under -strict, with the dropped count surfaced either
// way.
func TestRunStrictDropped(t *testing.T) {
	dir := t.TempDir()
	lossy := filepath.Join(dir, "lossy.jsonl")
	writeTrace(t, lossy,
		trace.Event{At: 1, Kind: trace.ThreadStart, Thread: "T", N: 5},
		trace.Event{At: 7, Kind: trace.WaitEnd, Thread: "T", Object: "M"},
	)

	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{lossy}, false); code != 0 {
		t.Fatalf("lossy trace without -strict: exit %d, stderr %q", code, errw.String())
	}
	if !strings.Contains(out.String(), "1 dropped") {
		t.Errorf("dropped count not reported: %q", out.String())
	}

	out.Reset()
	errw.Reset()
	if code := run(&out, &errw, []string{lossy}, true); code != 1 {
		t.Errorf("lossy trace with -strict: exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "dropped as unjoinable") {
		t.Errorf("strict failure not explained: %q", errw.String())
	}
}

// TestRunStrictToleratesDeclaredTruncation pins the flight-recorder
// contract: the same unjoinable stream passes -strict when its meta line
// declares a truncated (ring-wrapped) prefix, because the drops are
// attributable to the overwritten events rather than to schema damage.
func TestRunStrictToleratesDeclaredTruncation(t *testing.T) {
	dir := t.TempDir()
	truncated := filepath.Join(dir, "truncated.jsonl")
	f, err := os.Create(truncated)
	if err != nil {
		t.Fatal(err)
	}
	w := obs.NewJSONLWriterInfo(f, obs.StreamInfo{Truncated: true, Lost: 12})
	// A wait-end whose start was overwritten: unjoinable, hence dropped.
	w.Emit(trace.Event{At: 7, Kind: trace.WaitEnd, Thread: "T", Object: "M"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{truncated}, true); code != 0 {
		t.Fatalf("declared-truncated stream with -strict: exit %d, stderr %q", code, errw.String())
	}
	if !strings.Contains(out.String(), "truncated: 12 lost") {
		t.Errorf("truncation not surfaced: %q", out.String())
	}
}
