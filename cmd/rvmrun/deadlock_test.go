package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/rewrite"
	"repro/internal/sched"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRenderDeadlockCycles: the report names every member thread with its
// priority, held monitor, acquisition site and wait edge, and re-formed
// duplicates of one cycle collapse into a single block.
func TestRenderDeadlockCycles(t *testing.T) {
	cycle := []core.DeadlockEdge{
		{Task: "ab#1", Priority: 5, Holds: "Lock#1", HoldSite: "ab@5", WaitsFor: "Lock#2", WaitSite: "ab@9"},
		{Task: "ba#2", Priority: 3, Holds: "Lock#2", HoldSite: "ba@5", WaitsFor: "Lock#1", WaitSite: "ba@9"},
	}
	got := renderDeadlockCycles([][]core.DeadlockEdge{cycle, cycle})
	want := "deadlock: wait-for cycle of 2 threads\n" +
		"  ab#1 (prio 5) holds Lock#1 (acquired at ab@5) waits for Lock#2 (at ab@9)\n" +
		"  ba#2 (prio 3) holds Lock#2 (acquired at ba@5) waits for Lock#1 (at ba@9)\n"
	if got != want {
		t.Errorf("report:\n%s\nwant:\n%s", got, want)
	}
	if n := strings.Count(got, "wait-for cycle"); n != 1 {
		t.Errorf("duplicate cycle rendered %d times, want 1", n)
	}
}

// TestDeadlockReportGolden pins the exact -deadlock runtime report for
// each seeded deadlock example, produced through the same pipeline the
// command runs (rewrite, certified static elision, revocation VM with
// the wait-for-graph observer). The deterministic scheduler makes the
// cycle — threads, priorities, monitors, sites — identical on every run.
func TestDeadlockReportGolden(t *testing.T) {
	for _, name := range []string{"deadlock", "deadlock2", "aliasdl", "recdl"} {
		name := name
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("..", "..", "examples", name, name+".rvm"))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := bytecode.Assemble(string(src))
			if err != nil {
				t.Fatal(err)
			}
			if err := bytecode.Verify(prog); err != nil {
				t.Fatal(err)
			}
			prog, err = rewrite.Rewrite(prog)
			if err != nil {
				t.Fatal(err)
			}
			facts, err := analysis.Analyze(prog)
			if err != nil {
				t.Fatal(err)
			}
			rewrite.ApplyStaticElision(prog, facts)

			var cycles [][]core.DeadlockEdge
			rt := core.New(core.Config{
				Mode:              core.Revocation,
				TrackDependencies: true,
				DeadlockDetection: true,
				OnDeadlock:        func(cycle []core.DeadlockEdge) { cycles = append(cycles, cycle) },
				Sched:             sched.Config{Quantum: 1000},
			})
			if _, err := interp.Run(rt, prog, interp.Options{Rewritten: true, Facts: facts}); err != nil {
				t.Fatal(err)
			}
			if len(cycles) == 0 {
				t.Fatal("no deadlock witnessed")
			}
			got := []byte(renderDeadlockCycles(cycles))

			golden := filepath.Join("testdata", name+".deadlock.golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("runtime deadlock report drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}
