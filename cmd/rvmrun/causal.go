package main

import (
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/causal"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/prof"
	"repro/internal/rewrite"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Critical-path analysis and the what-if engine, behind -critpath and
// -whatif. The DAG is built from the run's own trace stream; what-if
// experiments re-execute the program from source under core.Perturb cost
// models, which the deterministic VM makes exact rather than sampled.

// causalCLIOpts carries the flag state runCausal needs, including
// everything required to re-execute the program for what-if experiments.
type causalCLIOpts struct {
	report     bool
	foldedPath string
	perfetto   string
	whatif     bool
	whatifTop  int

	src         string
	mode        core.Mode
	rewriteProg bool
	static      bool
	tier        interp.Tier
	threaded    bool
	quantum     int64
	seed        int64
	switchCost  int64
}

// runCausal builds the DAG, enforces the longest-path==clock invariant
// (exit 1 on violation — a broken DAG means a broken stream, not a
// shifted attribution), renders the report and exports, and drives the
// what-if batch.
func runCausal(rec *trace.Recorder, sites *causal.SiteRecorder, rt *core.Runtime, o causalCLIOpts) error {
	g, err := causal.Build(rec.Events(), causal.Options{})
	if err != nil {
		return err
	}
	if err := g.CheckInvariant(); err != nil {
		return fmt.Errorf("critical-path invariant FAILED: %w", err)
	}
	if g.FinalClock != rt.Now() {
		return fmt.Errorf("critical-path invariant FAILED: DAG clock %d != runtime clock %d", g.FinalClock, rt.Now())
	}
	a, err := g.CriticalPath()
	if err != nil {
		return err
	}
	if sites != nil {
		sites.AttachSites(a)
	}
	if o.report {
		causal.RenderReport(os.Stdout, g, a, 5)
	}
	if o.foldedPath != "" {
		if err := writeTo(o.foldedPath, func(w *os.File) error { return causal.WriteFolded(w, a) }); err != nil {
			return err
		}
	}
	if o.perfetto != "" {
		if err := writeTo(o.perfetto, func(w *os.File) error { return causal.WritePerfetto(w, g, a) }); err != nil {
			return err
		}
	}
	if !o.whatif {
		return nil
	}

	run := whatifRunner(o)
	baseline, err := run(nil)
	if err != nil {
		return fmt.Errorf("whatif baseline re-execution: %w", err)
	}
	if baseline.Clock != rt.Now() {
		return fmt.Errorf("whatif baseline clock %d != original run %d — re-execution is not reproducing the run", baseline.Clock, rt.Now())
	}
	exps := causal.SuggestExperiments(a, o.whatifTop)
	w, err := causal.RunWhatIf(baseline, run, exps)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stdout)
	causal.RenderWhatIf(os.Stdout, w)
	if !w.ControlOK {
		return fmt.Errorf("whatif control replay diverged — determinism harness broken")
	}
	return nil
}

// whatifRunner builds the RunFn: a full re-execution from source through
// the same pipeline as the main run (assemble, verify, rewrite, static
// analysis), under the given perturbation, with print output captured
// into the fingerprint instead of stdout.
func whatifRunner(o causalCLIOpts) causal.RunFn {
	return func(p *core.Perturb) (causal.Outcome, error) {
		prog, err := bytecode.Assemble(o.src)
		if err != nil {
			return causal.Outcome{}, err
		}
		if err := bytecode.Verify(prog); err != nil {
			return causal.Outcome{}, err
		}
		if o.rewriteProg {
			if prog, err = rewrite.Rewrite(prog); err != nil {
				return causal.Outcome{}, err
			}
		}
		var facts *analysis.Facts
		if o.static {
			if facts, err = analysis.Analyze(prog); err != nil {
				return causal.Outcome{}, err
			}
			rewrite.ApplyStaticElision(prog, facts)
		}
		var profiler *prof.Profiler
		if p != nil && len(p.Scale) > 0 {
			// Site scaling resolves (method, pc) through the profiler's
			// call-stack mirror; attach a throwaway one.
			profiler = prof.New()
		}
		rt := core.New(core.Config{
			Mode:              o.mode,
			TrackDependencies: true,
			DeadlockDetection: o.mode == core.Revocation,
			Perturb:           p,
			Profiler:          profiler,
			Sched: sched.Config{
				Quantum:    simtime.Ticks(o.quantum),
				Seed:       o.seed,
				SwitchCost: simtime.Ticks(o.switchCost),
			},
		})
		env, err := interp.Run(rt, prog, interp.Options{
			Rewritten: o.rewriteProg,
			Tier:      o.tier,
			Threaded:  o.threaded,
			Facts:     facts,
		})
		if err != nil {
			return causal.Outcome{}, err
		}
		fp := fmt.Sprintf("stats=%+v printed=%v", rt.Stats(), env.Printed)
		return causal.Outcome{Clock: rt.Now(), Fingerprint: fp}, nil
	}
}

// writeTo creates path and hands it to write, closing on the way out.
func writeTo(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
