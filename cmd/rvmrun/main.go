// Command rvmrun assembles and executes a bytecode program on the
// reproduction's virtual machine, optionally applying the paper's bytecode
// rewriting and running on the revocation-enabled ("modified") VM.
//
// Usage:
//
//	rvmrun [-vm unmodified|revocation] [-rewrite] [-static] [-race] [-deadlock]
//	       [-tier exec|threaded|opt] [-quantum N] [-trace] [-disasm] [-stats]
//	       [-trace-out FILE] [-trace-format text|jsonl|perfetto]
//	       [-metrics text|json] [-metrics-out FILE] program.rvm
//
// The program file uses the assembler syntax of internal/bytecode (see the
// Assemble documentation and examples/bytecode/inversion.rvm). Threads are
// declared with `thread NAME priority N run METHOD`.
//
// Observability: -trace-out with -trace-format=jsonl streams the run as
// schema-versioned JSON lines (validate with cmd/tracecheck);
// -trace-format=perfetto writes a Chrome trace-event JSON file that opens
// directly in ui.perfetto.dev, with one track per VM thread and flow arrows
// from each revocation request to the rollback it caused. -metrics prints
// virtual-time latency histograms (per-monitor hold, per-thread blocking,
// rollback wasted ticks) with p50/p90/p99 in ticks.
//
// Profiling: -profile DIR attaches the virtual-time profiler and writes
// work/waste/block/sched profiles into DIR, each as a gzipped pprof
// protobuf (open with `go tool pprof -http=: DIR/waste.pb.gz`) and as
// folded stacks for flamegraph tooling. -http ADDR additionally serves the
// profiles and Prometheus text metrics live while the VM runs
// (/debug/pprof/, /metrics); add -http-wait to keep serving after the run
// until interrupted.
//
// Flight recorder: -fr attaches the always-on black-box recorder
// (internal/fr) — every event goes into a bounded binary ring, and an
// anomaly (deadlock cycle, committed race, rollback storm, latency breach;
// select with -fr-dump-on) snapshots the ring together with stats, metrics
// and the profiler digest into a self-contained .rvmfr dump (inspect with
// cmd/rvmfr). -fr-size bounds the ring; -fr-out names the dump file or
// directory. With -http, /debug/fr serves an on-demand dump of the live
// ring. -stats-json FILE writes the final core.Stats as machine-readable
// JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/causal"
	"repro/internal/core"
	"repro/internal/fr"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/race"
	"repro/internal/rewrite"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func main() {
	var (
		vmMode    = flag.String("vm", "revocation", "virtual machine: unmodified or revocation")
		doRewrite = flag.Bool("rewrite", true, "apply the paper's bytecode rewriting (rollback scopes)")
		tierFlag  = flag.String("tier", "", "execution tier: exec (switch interpreter), threaded, or opt (fused superinstructions); default exec")
		threaded  = flag.Bool("threaded", false, "deprecated alias for -tier=threaded")
		quantum   = flag.Int64("quantum", 1000, "scheduler quantum in ticks")
		seed      = flag.Int64("seed", 0, "deterministic scheduler seed")
		static    = flag.Bool("static", false, "run whole-program analysis: pre-mark non-revocable sections, elide proven-safe write barriers")
		raceFlag  = flag.Bool("race", false, "enable the dynamic data-race sanitizer (reports to stderr, exit 1 on races)")
		dlDetect  = flag.Bool("deadlock", false, "enable the runtime wait-for-graph deadlock detector (reports cycles to stderr, exit 1 on deadlocks)")
		doTrace   = flag.Bool("trace", false, "stream runtime events to stderr")
		timeline  = flag.Bool("timeline", false, "print an ASCII schedule timeline at the end")
		disasm    = flag.Bool("disasm", false, "print the (rewritten) program and exit")
		stats     = flag.Bool("stats", true, "print runtime statistics at the end")

		traceOut    = flag.String("trace-out", "", "write the trace to FILE (- for stdout)")
		traceFormat = flag.String("trace-format", "text", "trace file format: text, jsonl or perfetto")
		metrics     = flag.String("metrics", "", "print latency histograms at the end: text or json")
		metricsOut  = flag.String("metrics-out", "", "write metrics to FILE instead of stderr (- for stdout)")

		profileDir = flag.String("profile", "", "write virtual-time profiles (pprof + folded stacks) into DIR")
		httpAddr   = flag.String("http", "", "serve live /metrics and /debug/pprof/ profiles on ADDR (e.g. :8080)")
		httpWait   = flag.Bool("http-wait", false, "with -http: keep serving after the run until interrupted")
		switchCost = flag.Int64("switch-cost", 0, "context-switch cost in ticks (shows up in the sched profile)")

		critpath         = flag.Bool("critpath", false, "build the happens-before DAG from the trace stream, verify the longest-path==final-clock invariant, and print the critical-path attribution")
		critpathFolded   = flag.String("critpath-folded", "", "write the critical path as folded stacks to FILE (implies -critpath)")
		critpathPerfetto = flag.String("critpath-perfetto", "", "write a Perfetto trace with the critical path highlighted to FILE (implies -critpath)")
		whatif           = flag.Bool("whatif", false, "after the run, re-execute under suggested cost perturbations (zero-contention per monitor, revocation disabled) and report exact virtual speedups")
		whatifTop        = flag.Int("whatif-top", 2, "with -whatif: perturb the top N critical and top N raw-contended monitors")

		frEnable  = flag.Bool("fr", false, "attach the always-on flight recorder (bounded binary event ring, anomaly-triggered .rvmfr dumps)")
		frSize    = flag.Int("fr-size", fr.DefaultSize, "flight recorder ring capacity in bytes")
		frDumpOn  = flag.String("fr-dump-on", "", "flight recorder triggers: comma list of deadlock, race, storm[=N@WINDOW], latency=TICKS, exit, or none (default deadlock,race,storm)")
		frOut     = flag.String("fr-out", "", "flight recorder dump file (*.rvmfr) or directory (default: <program>-<reason>-<seq>.rvmfr in the working directory)")
		statsJSON = flag.String("stats-json", "", "write final runtime statistics as JSON to FILE (- for stdout)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rvmrun [flags] program.rvm")
		flag.Usage()
		os.Exit(2)
	}
	switch *traceFormat {
	case "text", "jsonl", "perfetto":
	default:
		fatal(fmt.Errorf("unknown -trace-format %q (want text, jsonl or perfetto)", *traceFormat))
	}
	switch *metrics {
	case "", "text", "json":
	default:
		fatal(fmt.Errorf("unknown -metrics %q (want text or json)", *metrics))
	}
	// -tier wins over the deprecated -threaded alias; with no -tier the
	// alias still selects the threaded tier via Options normalization.
	var tier interp.Tier
	if *tierFlag != "" {
		var err error
		if tier, err = interp.ParseTier(*tierFlag); err != nil {
			fatal(err)
		}
	}
	if *traceFormat != "text" && *traceOut == "" {
		fatal(fmt.Errorf("-trace-format=%s requires -trace-out FILE", *traceFormat))
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := bytecode.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	if err := bytecode.Verify(prog); err != nil {
		fatal(err)
	}

	var mode core.Mode
	switch *vmMode {
	case "unmodified":
		mode = core.Unmodified
	case "revocation":
		mode = core.Revocation
	default:
		fatal(fmt.Errorf("unknown -vm %q", *vmMode))
	}

	if *doRewrite {
		prog, err = rewrite.Rewrite(prog)
		if err != nil {
			fatal(err)
		}
	}

	// Static analysis runs over the program the VM will actually execute
	// (post-rewrite), so the facts are keyed by the pcs the interpreter
	// sees. Elision rewrites proven-safe stores to their raw forms; the
	// facts handed to the interpreter drive allocation logging (which keeps
	// fresh-target elision sound under rollback) and monitor pre-marking.
	var facts *analysis.Facts
	if *static {
		facts, err = analysis.Analyze(prog)
		if err != nil {
			fatal(fmt.Errorf("static analysis: %w", err))
		}
		rewrite.ApplyStaticElision(prog, facts)
	}

	if *disasm {
		for _, m := range prog.Methods {
			fmt.Println(bytecode.Disassemble(m))
		}
		return
	}

	// Base tracer: stderr narration and/or the timeline recorder.
	var rec trace.Recorder
	var sink trace.Sink = trace.Discard
	switch {
	case *doTrace && *timeline:
		sink = trace.Multi{trace.Writer{W: os.Stderr}, &rec}
	case *doTrace:
		sink = trace.Writer{W: os.Stderr}
	case *timeline:
		sink = &rec
	}

	// Observability sinks ride on Config.Observer, multiplexed by the
	// runtime next to the base tracer; a plain run keeps Observer nil and
	// pays nothing.
	var (
		obsSinks  trace.Multi
		observer  *obs.Observer
		syncObs   *obs.SyncObserver
		jsonl     *obs.JSONLWriter
		traceFile io.WriteCloser
	)
	if *traceOut != "" {
		traceFile, err = createOut(*traceOut)
		if err != nil {
			fatal(err)
		}
		switch *traceFormat {
		case "text":
			obsSinks = append(obsSinks, trace.Writer{W: traceFile})
		case "jsonl":
			jsonl = obs.NewJSONLWriter(traceFile)
			obsSinks = append(obsSinks, jsonl)
		}
	}
	switch {
	case *httpAddr != "":
		// The live endpoint scrapes from a foreign goroutine: the observer
		// must be the mutex-wrapped variant. Post-run consumers read the
		// inner observer once the VM has stopped.
		syncObs = obs.NewSyncObserver()
		obsSinks = append(obsSinks, syncObs)
	case *metrics != "" || *traceFormat == "perfetto":
		observer = obs.NewObserver()
		obsSinks = append(obsSinks, observer)
	}
	var profiler *prof.Profiler
	if *profileDir != "" || *httpAddr != "" {
		profiler = prof.New()
	}

	// Critical-path analysis records the full event stream; with a profiler
	// attached, the per-tick charge stream additionally attributes critical
	// work to bytecode sites.
	causalOn := *critpath || *whatif || *critpathFolded != "" || *critpathPerfetto != ""
	var (
		causalRec *trace.Recorder
		siteRec   *causal.SiteRecorder
	)
	if causalOn {
		causalRec = &trace.Recorder{}
		obsSinks = append(obsSinks, causalRec)
		if profiler != nil {
			siteRec = causal.NewSiteRecorder()
			profiler.SetSampler(siteRec.Add)
		}
	}

	// Flight recorder: always-on binary ring on Config.Observer. The
	// StatsJSON/ProfileJSON providers close over rtRef, set once the runtime
	// exists — trigger dumps fire on the VM goroutine, where reading Stats
	// is safe. (/debug/fr dumps taken while the VM still runs may catch the
	// counters mid-update; they are diagnostics, not accounting.)
	var (
		recorder *fr.Recorder
		syncRec  *fr.SyncRecorder
		frTrig   fr.TriggerSpec
		rtRef    *core.Runtime
	)
	if *frEnable || *frOut != "" || *frDumpOn != "" {
		frTrig, err = fr.ParseTriggers(*frDumpOn)
		if err != nil {
			fatal(err)
		}
		frCfg := fr.Config{
			Size:     *frSize,
			Triggers: frTrig,
			Program:  flag.Arg(0),
			VM:       *vmMode,
			StatsJSON: func() []byte {
				if rtRef == nil {
					return nil
				}
				b, err := json.Marshal(rtRef.Stats())
				if err != nil {
					return nil
				}
				return b
			},
		}
		if profiler != nil {
			p := profiler
			frCfg.ProfileJSON = func() []byte {
				b, err := json.Marshal(p.Snapshot().Digest(10))
				if err != nil {
					return nil
				}
				return b
			}
		}
		frCfg.OnDump = func(d *fr.Dump) {
			if err := writeFRDump(*frOut, flag.Arg(0), d); err != nil {
				fmt.Fprintln(os.Stderr, "rvmrun: flight recorder:", err)
			}
		}
		recorder = fr.New(frCfg)
		if *httpAddr != "" {
			// /debug/fr snapshots from a foreign goroutine: wrap in the
			// mutex variant, same pattern as the SyncObserver.
			syncRec = fr.NewSync(recorder)
			obsSinks = append(obsSinks, syncRec)
		} else {
			obsSinks = append(obsSinks, recorder)
		}
	}

	var obsSink trace.Sink
	switch len(obsSinks) {
	case 0:
	case 1:
		obsSink = obsSinks[0]
	default:
		obsSink = obsSinks
	}

	var srvDone func()
	if *httpAddr != "" {
		srvDone, err = serveHTTP(*httpAddr, profiler, syncObs, syncRec, *httpWait)
		if err != nil {
			fatal(err)
		}
	}

	var detector *race.Detector
	if *raceFlag {
		detector = race.New()
		if facts != nil {
			// Slots the analysis certified race-free skip the sanitizer's
			// per-access vector-clock checks; the certificates were verified
			// by VerifyCertificates inside interp.NewEnv below.
			detector.SetCertifiedRaceFree(facts.RaceFreeSlotNames())
		}
	}
	cfg := core.Config{
		Mode:              mode,
		TrackDependencies: true,
		DeadlockDetection: mode == core.Revocation,
		Tracer:            sink,
		Observer:          obsSink,
		Race:              detector,
		Profiler:          profiler,
		Sched: sched.Config{
			Quantum:    simtime.Ticks(*quantum),
			Seed:       *seed,
			SwitchCost: simtime.Ticks(*switchCost),
		},
	}
	// The wait-for-graph observer reports cycles without breaking them; in
	// revocation mode the paper's own detector still resolves the deadlock
	// afterwards, in unmodified mode the run ends in the scheduler's
	// all-blocked diagnosis. Either way the report below names every edge.
	var dlCycles [][]core.DeadlockEdge
	if *dlDetect {
		cfg.OnDeadlock = func(cycle []core.DeadlockEdge) {
			dlCycles = append(dlCycles, cycle)
		}
	}
	rt := core.New(cfg)
	rtRef = rt
	env, runErr := interp.Run(rt, prog, interp.Options{
		Rewritten: *doRewrite,
		Tier:      tier,
		Threaded:  *threaded,
		Facts:     facts,
		Out:       os.Stdout,
	})
	if syncObs != nil {
		// The VM has stopped emitting; the inner observer is now safe for
		// the post-run exporters.
		observer = syncObs.Observer()
	}
	if runErr != nil && env == nil {
		finishExports(traceFile, jsonl, observer, *traceFormat)
		fatal(runErr)
	}

	var raceReports []race.Report
	if detector != nil {
		raceReports = detector.Finalize()
	}

	if *timeline {
		fmt.Fprintln(os.Stderr, "\ntimeline ('#' dispatched, 'R' rollback):")
		fmt.Fprint(os.Stderr, trace.Timeline(rec.Events(), 72))
	}
	if *stats {
		printStats(rt)
		if env != nil {
			execN, thrN, optN := env.TierCounts()
			fmt.Fprintf(os.Stderr, "tiers: exec-methods=%d threaded-methods=%d opt-methods=%d\n",
				execN, thrN, optN)
		}
		if profiler != nil {
			fmt.Fprintf(os.Stderr, "profile: work=%d waste=%d block=%d sched=%d ticks\n",
				profiler.Total(prof.Work), profiler.Total(prof.Waste),
				profiler.Total(prof.Block), profiler.Total(prof.Sched))
		}
		if observer != nil {
			fmt.Fprintf(os.Stderr, "obs: spans=%d dropped=%d\n",
				len(observer.AllSpans()), observer.Dropped())
		}
	}
	if detector != nil {
		fmt.Fprint(os.Stderr, race.RenderReports(raceReports))
	}
	if len(dlCycles) > 0 {
		fmt.Fprint(os.Stderr, renderDeadlockCycles(dlCycles))
	}
	if observer != nil && *metrics != "" {
		if err := writeMetrics(observer, *metrics, *metricsOut); err != nil {
			fatal(err)
		}
	}
	if recorder != nil && frTrig.Exit {
		// Unconditional end-of-run capture; the VM has stopped emitting, so
		// the plain recorder is safe even when a SyncRecorder wrapped it.
		d, err := recorder.Snapshot(fr.ReasonExit)
		if err == nil {
			err = writeFRDump(*frOut, flag.Arg(0), d)
		}
		if err != nil {
			fatal(fmt.Errorf("flight recorder: %w", err))
		}
	}
	if *statsJSON != "" {
		if err := writeStatsJSON(rt, *statsJSON); err != nil {
			fatal(err)
		}
	}
	if err := finishExports(traceFile, jsonl, observer, *traceFormat); err != nil {
		fatal(err)
	}
	if *profileDir != "" {
		if err := writeProfiles(profiler, *profileDir); err != nil {
			fatal(err)
		}
	}
	if causalOn {
		if err := runCausal(causalRec, siteRec, rt, causalCLIOpts{
			report:      *critpath || *whatif,
			foldedPath:  *critpathFolded,
			perfetto:    *critpathPerfetto,
			whatif:      *whatif,
			whatifTop:   *whatifTop,
			src:         string(src),
			mode:        mode,
			rewriteProg: *doRewrite,
			static:      *static,
			tier:        tier,
			threaded:    *threaded,
			quantum:     *quantum,
			seed:        *seed,
			switchCost:  *switchCost,
		}); err != nil {
			fatal(err)
		}
	}
	if srvDone != nil {
		srvDone()
	}
	if runErr != nil {
		fatal(runErr)
	}
	if len(raceReports) > 0 || len(dlCycles) > 0 {
		os.Exit(1)
	}
}

// renderDeadlockCycles formats the wait-for-graph observer's reports, one
// block per distinct cycle: every member thread with its priority, the
// monitor it holds (and the bytecode site that acquired it), and the
// monitor it is blocked on. Re-detections of the same cycle (a broken and
// re-formed deadlock) collapse into one block.
func renderDeadlockCycles(cycles [][]core.DeadlockEdge) string {
	var b, key strings.Builder
	seen := make(map[string]bool)
	for _, cy := range cycles {
		key.Reset()
		for _, e := range cy {
			fmt.Fprintf(&key, "%s->%s;", e.Task, e.Holds)
		}
		if seen[key.String()] {
			continue
		}
		seen[key.String()] = true
		fmt.Fprintf(&b, "deadlock: wait-for cycle of %d threads\n", len(cy))
		for _, e := range cy {
			fmt.Fprintf(&b, "  %s (prio %d) holds %s (acquired at %s) waits for %s (at %s)\n",
				e.Task, e.Priority, e.Holds, e.HoldSite, e.WaitsFor, e.WaitSite)
		}
	}
	return b.String()
}

// serveHTTP starts the live profiling endpoint. With a recorder attached,
// /debug/fr additionally serves an on-demand flight-recorder dump of the
// live ring. The returned function is called after the run: it either
// closes the listener, or (wait) keeps serving until the process is
// interrupted.
func serveHTTP(addr string, p *prof.Profiler, so *obs.SyncObserver, sr *fr.SyncRecorder, wait bool) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	var extra func(io.Writer)
	if so != nil {
		extra = func(w io.Writer) {
			obs.WritePrometheus(w, so.MetricsSummary())
		}
	}
	mux := http.NewServeMux()
	if sr != nil {
		mux.HandleFunc("/debug/fr", func(w http.ResponseWriter, r *http.Request) {
			d, err := sr.Snapshot(fr.ReasonManual)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", `attachment; filename="dump.rvmfr"`)
			fr.WriteDump(w, d)
		})
	}
	mux.Handle("/", prof.Handler(p, extra))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "rvmrun: serving live metrics and profiles on http://%s/\n", ln.Addr())
	return func() {
		if wait {
			fmt.Fprintf(os.Stderr, "rvmrun: run complete; still serving on http://%s/ — interrupt to exit\n", ln.Addr())
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt)
			<-ch
		}
		srv.Close()
	}, nil
}

// writeProfiles snapshots the profiler and writes every dimension into dir
// as a gzipped pprof protobuf plus folded stacks.
func writeProfiles(p *prof.Profiler, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	snap := p.Snapshot()
	for _, d := range prof.Dims() {
		pb, err := os.Create(filepath.Join(dir, d.String()+".pb.gz"))
		if err != nil {
			return err
		}
		err = snap.WritePprof(pb, d)
		if cerr := pb.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fold, err := os.Create(filepath.Join(dir, d.String()+".folded"))
		if err != nil {
			return err
		}
		err = snap.WriteFolded(fold, d)
		if cerr := fold.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// finishExports completes the trace file: flushes the JSONL stream or
// serializes the Perfetto trace from the observer, then closes the file.
func finishExports(f io.WriteCloser, jsonl *obs.JSONLWriter, o *obs.Observer, format string) error {
	if f == nil {
		return nil
	}
	var err error
	if jsonl != nil {
		err = jsonl.Close()
	}
	if format == "perfetto" && o != nil {
		if werr := obs.WritePerfetto(f, o); err == nil {
			err = werr
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeMetrics(o *obs.Observer, format, path string) error {
	var w io.Writer = os.Stderr
	closeW := func() error { return nil }
	switch path {
	case "":
	case "-":
		w = os.Stdout
	default:
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w = f
		closeW = f.Close
	}
	var err error
	if format == "json" {
		err = o.Metrics().WriteJSON(w)
	} else {
		if path == "" {
			fmt.Fprintln(w)
		}
		o.Metrics().Render(w)
	}
	if cerr := closeW(); err == nil {
		err = cerr
	}
	return err
}

// frDumpPath resolves where a flight-recorder dump lands. An empty outSpec
// names the dump after the program, reason and sequence number in the
// working directory; a *.rvmfr outSpec is used verbatim for the first dump
// (sequence-suffixed after that); anything else is a directory.
func frDumpPath(outSpec, program string, d *fr.Dump) string {
	base := strings.TrimSuffix(filepath.Base(program), filepath.Ext(program))
	name := fmt.Sprintf("%s-%s-%d.rvmfr", base, d.Meta.Reason, d.Meta.Seq)
	switch {
	case outSpec == "":
		return name
	case strings.HasSuffix(outSpec, ".rvmfr"):
		if d.Meta.Seq <= 1 {
			return outSpec
		}
		return fmt.Sprintf("%s.%d.rvmfr", strings.TrimSuffix(outSpec, ".rvmfr"), d.Meta.Seq)
	default:
		return filepath.Join(outSpec, name)
	}
}

// writeFRDump serializes one dump to its resolved path.
func writeFRDump(outSpec, program string, d *fr.Dump) error {
	path := frDumpPath(outSpec, program, d)
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fr.WriteDump(f, d)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rvmrun: flight recorder dump (%s, %d events%s) written to %s\n",
		d.Meta.Reason, len(d.Events),
		map[bool]string{true: fmt.Sprintf(", %d lost", d.Lost), false: ""}[d.Truncated],
		path)
	return nil
}

// writeStatsJSON emits the final core.Stats as JSON ("-" for stdout).
func writeStatsJSON(rt *core.Runtime, path string) error {
	data, err := json.MarshalIndent(rt.Stats(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// createOut opens FILE for writing; "-" selects stdout (not closed).
func createOut(path string) (io.WriteCloser, error) {
	if path == "-" {
		return nopCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func printStats(rt *core.Runtime) {
	st := rt.Stats()
	fmt.Fprintf(os.Stderr, "\nvm=%v end=%d ticks\n", rt.Mode(), rt.Now())
	fmt.Fprintf(os.Stderr, "inversions=%d revocations=%d denied=%d rollbacks=%d re-executions=%d\n",
		st.Inversions, st.RevocationRequests, st.RevocationsDenied, st.Rollbacks, st.Reexecutions)
	fmt.Fprintf(os.Stderr, "logged=%d undone=%d wasted-ticks=%d deadlocks-broken=%d switches=%d\n",
		st.EntriesLogged, st.EntriesUndone, st.WastedTicks, st.DeadlocksBroken, st.ContextSwitches)
	if st.StaticPreMarks > 0 || st.RawStores > 0 || st.AllocsLogged > 0 || st.ConfinedElisions > 0 {
		fmt.Fprintf(os.Stderr, "static: premarks=%d raw-stores=%d allocs-logged=%d confined-elisions=%d\n",
			st.StaticPreMarks, st.RawStores, st.AllocsLogged, st.ConfinedElisions)
	}
	if st.RacesDetected > 0 || st.RaceReportsRetracted > 0 || st.RaceAccessesRetracted > 0 || st.RaceChecksSkipped > 0 {
		fmt.Fprintf(os.Stderr, "race: detected=%d reports-retracted=%d accesses-retracted=%d checks-skipped=%d\n",
			st.RacesDetected, st.RaceReportsRetracted, st.RaceAccessesRetracted, st.RaceChecksSkipped)
	}
	for _, th := range rt.Scheduler().Threads() {
		fmt.Fprintf(os.Stderr, "thread %-12s prio=%d start=%d end=%d cpu=%d\n",
			th.Name(), th.BasePriority(), th.StartedAt(), th.EndedAt(), th.CPU())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rvmrun:", err)
	os.Exit(1)
}
