// Command rvmrun assembles and executes a bytecode program on the
// reproduction's virtual machine, optionally applying the paper's bytecode
// rewriting and running on the revocation-enabled ("modified") VM.
//
// Usage:
//
//	rvmrun [-vm unmodified|revocation] [-rewrite] [-static] [-threaded]
//	       [-quantum N] [-trace] [-disasm] [-stats] program.rvm
//
// The program file uses the assembler syntax of internal/bytecode (see the
// Assemble documentation and examples/bytecode/inversion.rvm). Threads are
// declared with `thread NAME priority N run METHOD`.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/rewrite"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func main() {
	var (
		vmMode    = flag.String("vm", "revocation", "virtual machine: unmodified or revocation")
		doRewrite = flag.Bool("rewrite", true, "apply the paper's bytecode rewriting (rollback scopes)")
		threaded  = flag.Bool("threaded", false, "use the threaded-code execution tier")
		quantum   = flag.Int64("quantum", 1000, "scheduler quantum in ticks")
		seed      = flag.Int64("seed", 0, "deterministic scheduler seed")
		static    = flag.Bool("static", false, "run whole-program analysis: pre-mark non-revocable sections, elide proven-safe write barriers")
		doTrace   = flag.Bool("trace", false, "stream runtime events to stderr")
		timeline  = flag.Bool("timeline", false, "print an ASCII schedule timeline at the end")
		disasm    = flag.Bool("disasm", false, "print the (rewritten) program and exit")
		stats     = flag.Bool("stats", true, "print runtime statistics at the end")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rvmrun [flags] program.rvm")
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := bytecode.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	if err := bytecode.Verify(prog); err != nil {
		fatal(err)
	}

	var mode core.Mode
	switch *vmMode {
	case "unmodified":
		mode = core.Unmodified
	case "revocation":
		mode = core.Revocation
	default:
		fatal(fmt.Errorf("unknown -vm %q", *vmMode))
	}

	if *doRewrite {
		prog, err = rewrite.Rewrite(prog)
		if err != nil {
			fatal(err)
		}
	}

	// Static analysis runs over the program the VM will actually execute
	// (post-rewrite), so the facts are keyed by the pcs the interpreter
	// sees. Elision rewrites proven-safe stores to their raw forms; the
	// facts handed to the interpreter drive allocation logging (which keeps
	// fresh-target elision sound under rollback) and monitor pre-marking.
	var facts *analysis.Facts
	if *static {
		facts, err = analysis.Analyze(prog)
		if err != nil {
			fatal(fmt.Errorf("static analysis: %w", err))
		}
		rewrite.ApplyStaticElision(prog, facts)
	}

	if *disasm {
		for _, m := range prog.Methods {
			fmt.Println(bytecode.Disassemble(m))
		}
		return
	}

	var rec trace.Recorder
	var sink trace.Sink = trace.Discard
	switch {
	case *doTrace && *timeline:
		sink = trace.Multi{trace.Writer{W: os.Stderr}, &rec}
	case *doTrace:
		sink = trace.Writer{W: os.Stderr}
	case *timeline:
		sink = &rec
	}
	rt := core.New(core.Config{
		Mode:              mode,
		TrackDependencies: true,
		DeadlockDetection: mode == core.Revocation,
		Tracer:            sink,
		Sched:             sched.Config{Quantum: simtime.Ticks(*quantum), Seed: *seed},
	})
	env, err := interp.Run(rt, prog, interp.Options{
		Rewritten: *doRewrite,
		Threaded:  *threaded,
		Facts:     facts,
		Out:       os.Stdout,
	})
	if err != nil {
		if env != nil && *stats {
			printStats(rt)
		}
		fatal(err)
	}

	if *timeline {
		fmt.Fprintln(os.Stderr, "\ntimeline ('#' dispatched, 'R' rollback):")
		fmt.Fprint(os.Stderr, trace.Timeline(rec.Events(), 72))
	}
	if *stats {
		printStats(rt)
	}
}

func printStats(rt *core.Runtime) {
	st := rt.Stats()
	fmt.Fprintf(os.Stderr, "\nvm=%v end=%d ticks\n", rt.Mode(), rt.Now())
	fmt.Fprintf(os.Stderr, "inversions=%d revocations=%d denied=%d rollbacks=%d re-executions=%d\n",
		st.Inversions, st.RevocationRequests, st.RevocationsDenied, st.Rollbacks, st.Reexecutions)
	fmt.Fprintf(os.Stderr, "logged=%d undone=%d wasted-ticks=%d deadlocks-broken=%d switches=%d\n",
		st.EntriesLogged, st.EntriesUndone, st.WastedTicks, st.DeadlocksBroken, st.ContextSwitches)
	if st.StaticPreMarks > 0 || st.RawStores > 0 || st.AllocsLogged > 0 {
		fmt.Fprintf(os.Stderr, "static: premarks=%d raw-stores=%d allocs-logged=%d\n",
			st.StaticPreMarks, st.RawStores, st.AllocsLogged)
	}
	for _, th := range rt.Scheduler().Threads() {
		fmt.Fprintf(os.Stderr, "thread %-12s prio=%d start=%d end=%d cpu=%d\n",
			th.Name(), th.BasePriority(), th.StartedAt(), th.EndedAt(), th.CPU())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rvmrun:", err)
	os.Exit(1)
}
