// Command rvmrun assembles and executes a bytecode program on the
// reproduction's virtual machine, optionally applying the paper's bytecode
// rewriting and running on the revocation-enabled ("modified") VM.
//
// Usage:
//
//	rvmrun [-vm unmodified|revocation] [-rewrite] [-static] [-race] [-threaded]
//	       [-quantum N] [-trace] [-disasm] [-stats]
//	       [-trace-out FILE] [-trace-format text|jsonl|perfetto]
//	       [-metrics text|json] [-metrics-out FILE] program.rvm
//
// The program file uses the assembler syntax of internal/bytecode (see the
// Assemble documentation and examples/bytecode/inversion.rvm). Threads are
// declared with `thread NAME priority N run METHOD`.
//
// Observability: -trace-out with -trace-format=jsonl streams the run as
// schema-versioned JSON lines (validate with cmd/tracecheck);
// -trace-format=perfetto writes a Chrome trace-event JSON file that opens
// directly in ui.perfetto.dev, with one track per VM thread and flow arrows
// from each revocation request to the rollback it caused. -metrics prints
// virtual-time latency histograms (per-monitor hold, per-thread blocking,
// rollback wasted ticks) with p50/p90/p99 in ticks.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/race"
	"repro/internal/rewrite"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func main() {
	var (
		vmMode    = flag.String("vm", "revocation", "virtual machine: unmodified or revocation")
		doRewrite = flag.Bool("rewrite", true, "apply the paper's bytecode rewriting (rollback scopes)")
		threaded  = flag.Bool("threaded", false, "use the threaded-code execution tier")
		quantum   = flag.Int64("quantum", 1000, "scheduler quantum in ticks")
		seed      = flag.Int64("seed", 0, "deterministic scheduler seed")
		static    = flag.Bool("static", false, "run whole-program analysis: pre-mark non-revocable sections, elide proven-safe write barriers")
		raceFlag  = flag.Bool("race", false, "enable the dynamic data-race sanitizer (reports to stderr, exit 1 on races)")
		doTrace   = flag.Bool("trace", false, "stream runtime events to stderr")
		timeline  = flag.Bool("timeline", false, "print an ASCII schedule timeline at the end")
		disasm    = flag.Bool("disasm", false, "print the (rewritten) program and exit")
		stats     = flag.Bool("stats", true, "print runtime statistics at the end")

		traceOut    = flag.String("trace-out", "", "write the trace to FILE (- for stdout)")
		traceFormat = flag.String("trace-format", "text", "trace file format: text, jsonl or perfetto")
		metrics     = flag.String("metrics", "", "print latency histograms at the end: text or json")
		metricsOut  = flag.String("metrics-out", "", "write metrics to FILE instead of stderr (- for stdout)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rvmrun [flags] program.rvm")
		flag.Usage()
		os.Exit(2)
	}
	switch *traceFormat {
	case "text", "jsonl", "perfetto":
	default:
		fatal(fmt.Errorf("unknown -trace-format %q (want text, jsonl or perfetto)", *traceFormat))
	}
	switch *metrics {
	case "", "text", "json":
	default:
		fatal(fmt.Errorf("unknown -metrics %q (want text or json)", *metrics))
	}
	if *traceFormat != "text" && *traceOut == "" {
		fatal(fmt.Errorf("-trace-format=%s requires -trace-out FILE", *traceFormat))
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := bytecode.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	if err := bytecode.Verify(prog); err != nil {
		fatal(err)
	}

	var mode core.Mode
	switch *vmMode {
	case "unmodified":
		mode = core.Unmodified
	case "revocation":
		mode = core.Revocation
	default:
		fatal(fmt.Errorf("unknown -vm %q", *vmMode))
	}

	if *doRewrite {
		prog, err = rewrite.Rewrite(prog)
		if err != nil {
			fatal(err)
		}
	}

	// Static analysis runs over the program the VM will actually execute
	// (post-rewrite), so the facts are keyed by the pcs the interpreter
	// sees. Elision rewrites proven-safe stores to their raw forms; the
	// facts handed to the interpreter drive allocation logging (which keeps
	// fresh-target elision sound under rollback) and monitor pre-marking.
	var facts *analysis.Facts
	if *static {
		facts, err = analysis.Analyze(prog)
		if err != nil {
			fatal(fmt.Errorf("static analysis: %w", err))
		}
		rewrite.ApplyStaticElision(prog, facts)
	}

	if *disasm {
		for _, m := range prog.Methods {
			fmt.Println(bytecode.Disassemble(m))
		}
		return
	}

	// Base tracer: stderr narration and/or the timeline recorder.
	var rec trace.Recorder
	var sink trace.Sink = trace.Discard
	switch {
	case *doTrace && *timeline:
		sink = trace.Multi{trace.Writer{W: os.Stderr}, &rec}
	case *doTrace:
		sink = trace.Writer{W: os.Stderr}
	case *timeline:
		sink = &rec
	}

	// Observability sinks ride on Config.Observer, multiplexed by the
	// runtime next to the base tracer; a plain run keeps Observer nil and
	// pays nothing.
	var (
		obsSinks  trace.Multi
		observer  *obs.Observer
		jsonl     *obs.JSONLWriter
		traceFile io.WriteCloser
	)
	if *traceOut != "" {
		traceFile, err = createOut(*traceOut)
		if err != nil {
			fatal(err)
		}
		switch *traceFormat {
		case "text":
			obsSinks = append(obsSinks, trace.Writer{W: traceFile})
		case "jsonl":
			jsonl = obs.NewJSONLWriter(traceFile)
			obsSinks = append(obsSinks, jsonl)
		}
	}
	if *metrics != "" || *traceFormat == "perfetto" {
		observer = obs.NewObserver()
		obsSinks = append(obsSinks, observer)
	}
	var obsSink trace.Sink
	switch len(obsSinks) {
	case 0:
	case 1:
		obsSink = obsSinks[0]
	default:
		obsSink = obsSinks
	}

	var detector *race.Detector
	if *raceFlag {
		detector = race.New()
	}
	rt := core.New(core.Config{
		Mode:              mode,
		TrackDependencies: true,
		DeadlockDetection: mode == core.Revocation,
		Tracer:            sink,
		Observer:          obsSink,
		Race:              detector,
		Sched:             sched.Config{Quantum: simtime.Ticks(*quantum), Seed: *seed},
	})
	env, runErr := interp.Run(rt, prog, interp.Options{
		Rewritten: *doRewrite,
		Threaded:  *threaded,
		Facts:     facts,
		Out:       os.Stdout,
	})
	if runErr != nil && env == nil {
		finishExports(traceFile, jsonl, observer, *traceFormat)
		fatal(runErr)
	}

	var raceReports []race.Report
	if detector != nil {
		raceReports = detector.Finalize()
	}

	if *timeline {
		fmt.Fprintln(os.Stderr, "\ntimeline ('#' dispatched, 'R' rollback):")
		fmt.Fprint(os.Stderr, trace.Timeline(rec.Events(), 72))
	}
	if *stats {
		printStats(rt)
	}
	if detector != nil {
		fmt.Fprint(os.Stderr, race.RenderReports(raceReports))
	}
	if observer != nil && *metrics != "" {
		if err := writeMetrics(observer, *metrics, *metricsOut); err != nil {
			fatal(err)
		}
	}
	if err := finishExports(traceFile, jsonl, observer, *traceFormat); err != nil {
		fatal(err)
	}
	if runErr != nil {
		fatal(runErr)
	}
	if len(raceReports) > 0 {
		os.Exit(1)
	}
}

// finishExports completes the trace file: flushes the JSONL stream or
// serializes the Perfetto trace from the observer, then closes the file.
func finishExports(f io.WriteCloser, jsonl *obs.JSONLWriter, o *obs.Observer, format string) error {
	if f == nil {
		return nil
	}
	var err error
	if jsonl != nil {
		err = jsonl.Close()
	}
	if format == "perfetto" && o != nil {
		if werr := obs.WritePerfetto(f, o); err == nil {
			err = werr
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeMetrics(o *obs.Observer, format, path string) error {
	var w io.Writer = os.Stderr
	closeW := func() error { return nil }
	switch path {
	case "":
	case "-":
		w = os.Stdout
	default:
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w = f
		closeW = f.Close
	}
	var err error
	if format == "json" {
		err = o.Metrics().WriteJSON(w)
	} else {
		if path == "" {
			fmt.Fprintln(w)
		}
		o.Metrics().Render(w)
	}
	if cerr := closeW(); err == nil {
		err = cerr
	}
	return err
}

// createOut opens FILE for writing; "-" selects stdout (not closed).
func createOut(path string) (io.WriteCloser, error) {
	if path == "-" {
		return nopCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func printStats(rt *core.Runtime) {
	st := rt.Stats()
	fmt.Fprintf(os.Stderr, "\nvm=%v end=%d ticks\n", rt.Mode(), rt.Now())
	fmt.Fprintf(os.Stderr, "inversions=%d revocations=%d denied=%d rollbacks=%d re-executions=%d\n",
		st.Inversions, st.RevocationRequests, st.RevocationsDenied, st.Rollbacks, st.Reexecutions)
	fmt.Fprintf(os.Stderr, "logged=%d undone=%d wasted-ticks=%d deadlocks-broken=%d switches=%d\n",
		st.EntriesLogged, st.EntriesUndone, st.WastedTicks, st.DeadlocksBroken, st.ContextSwitches)
	if st.StaticPreMarks > 0 || st.RawStores > 0 || st.AllocsLogged > 0 {
		fmt.Fprintf(os.Stderr, "static: premarks=%d raw-stores=%d allocs-logged=%d\n",
			st.StaticPreMarks, st.RawStores, st.AllocsLogged)
	}
	if st.RacesDetected > 0 || st.RaceReportsRetracted > 0 || st.RaceAccessesRetracted > 0 {
		fmt.Fprintf(os.Stderr, "race: detected=%d reports-retracted=%d accesses-retracted=%d\n",
			st.RacesDetected, st.RaceReportsRetracted, st.RaceAccessesRetracted)
	}
	for _, th := range rt.Scheduler().Threads() {
		fmt.Fprintf(os.Stderr, "thread %-12s prio=%d start=%d end=%d cpu=%d\n",
			th.Name(), th.BasePriority(), th.StartedAt(), th.EndedAt(), th.CPU())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rvmrun:", err)
	os.Exit(1)
}
