package main

import (
	"path/filepath"
	"testing"

	"repro/internal/fr"
)

func TestFRDumpPath(t *testing.T) {
	mk := func(reason string, seq int) *fr.Dump {
		return &fr.Dump{Meta: fr.Meta{Reason: reason, Seq: seq}}
	}
	cases := []struct {
		outSpec, program string
		dump             *fr.Dump
		want             string
	}{
		{"", "examples/deadlock2/deadlock2.rvm", mk("deadlock", 1), "deadlock2-deadlock-1.rvmfr"},
		{"", "prog.rvm", mk("storm", 2), "prog-storm-2.rvmfr"},
		{"out.rvmfr", "prog.rvm", mk("deadlock", 1), "out.rvmfr"},
		{"out.rvmfr", "prog.rvm", mk("race", 3), "out.3.rvmfr"},
		{"dumps", "prog.rvm", mk("exit", 1), filepath.Join("dumps", "prog-exit-1.rvmfr")},
	}
	for _, c := range cases {
		if got := frDumpPath(c.outSpec, c.program, c.dump); got != c.want {
			t.Errorf("frDumpPath(%q, %q, %s/%d) = %q, want %q",
				c.outSpec, c.program, c.dump.Meta.Reason, c.dump.Meta.Seq, got, c.want)
		}
	}
}
