package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/causal"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/rewrite"
	"repro/internal/sched"
	"repro/internal/trace"
)

// runPipelineExample executes examples/pipeline with the default rvmrun
// configuration (revocation VM, rewrite, quantum 1000) and a trace
// recorder attached, returning the stream and the runtime.
func runPipelineExample(t *testing.T) ([]trace.Event, *core.Runtime) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "pipeline", "pipeline.rvm"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := bytecode.Assemble(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := bytecode.Verify(prog); err != nil {
		t.Fatal(err)
	}
	prog, err = rewrite.Rewrite(prog)
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	rt := core.New(core.Config{
		Mode:              core.Revocation,
		TrackDependencies: true,
		DeadlockDetection: true,
		Observer:          rec,
		Sched:             sched.Config{Quantum: 1000},
	})
	if _, err := interp.Run(rt, prog, interp.Options{Rewritten: true}); err != nil {
		t.Fatal(err)
	}
	return rec.Events(), rt
}

// TestPipelineCritPathGolden pins the exact -critpath report for the
// pipeline example — the program built so the hottest monitor by raw
// contention (the chatter lock) is NOT the critical monitor (the
// pipeline lock whose inversion and revocation sit on the makespan
// chain). The deterministic VM makes every tick in the report stable.
func TestPipelineCritPathGolden(t *testing.T) {
	events, rt := runPipelineExample(t)
	g, err := causal.Build(events, causal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if g.FinalClock != rt.Now() {
		t.Fatalf("DAG clock %d != runtime clock %d", g.FinalClock, rt.Now())
	}
	a, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}

	// The program's raison d'être: hottest != critical.
	crit, raw := a.TopCritical(1), a.TopRaw(1)
	if len(crit) == 0 || len(raw) == 0 {
		t.Fatalf("missing contention: critical %v raw %v", crit, raw)
	}
	if crit[0].Monitor == raw[0].Monitor {
		t.Fatalf("critical monitor %q == hottest monitor %q — the example no longer separates them", crit[0].Monitor, raw[0].Monitor)
	}

	var buf bytes.Buffer
	causal.RenderReport(&buf, g, a, 5)
	got := buf.Bytes()

	golden := filepath.Join("testdata", "pipeline.critpath.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("critpath report drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPipelineWhatIfAcceptance is the PR's headline acceptance property:
// the exact what-if speedup for eliding the CRITICAL monitor is strictly
// larger than for eliding the HOTTEST-by-raw-contention monitor, with a
// tick-identical zero-perturbation control.
func TestPipelineWhatIfAcceptance(t *testing.T) {
	events, rt := runPipelineExample(t)
	g, err := causal.Build(events, causal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	critMon := a.TopCritical(1)[0].Monitor
	hotMon := a.TopRaw(1)[0].Monitor

	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "pipeline", "pipeline.rvm"))
	if err != nil {
		t.Fatal(err)
	}
	run := whatifRunner(causalCLIOpts{
		src:         string(src),
		mode:        core.Revocation,
		rewriteProg: true,
		quantum:     1000,
	})
	baseline, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Clock != rt.Now() {
		t.Fatalf("baseline re-execution clock %d != original %d", baseline.Clock, rt.Now())
	}
	w, err := causal.RunWhatIf(baseline, run, []causal.Experiment{
		{Name: "uncontended:" + critMon, Kind: "uncontended", Target: critMon,
			Perturb: &core.Perturb{Uncontended: map[string]bool{critMon: true}}},
		{Name: "uncontended:" + hotMon, Kind: "uncontended", Target: hotMon,
			Perturb: &core.Perturb{Uncontended: map[string]bool{hotMon: true}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !w.ControlOK {
		t.Fatalf("zero-perturbation control diverged: %+v vs %+v", w.Control, w.Baseline)
	}
	var critUp, hotUp int64 = -1 << 62, -1 << 62
	for _, r := range w.Results {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Name, r.Err)
		}
		switch r.Target {
		case critMon:
			critUp = r.SpeedupTicks
		case hotMon:
			hotUp = r.SpeedupTicks
		}
	}
	if critUp <= 0 {
		t.Errorf("eliding the critical monitor %s bought %d ticks, want > 0", critMon, critUp)
	}
	if critUp <= hotUp {
		t.Errorf("critical monitor speedup %d <= hottest monitor speedup %d — critical contention must matter more", critUp, hotUp)
	}
}
