package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fr"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// makeDump writes a small deadlock-flavored dump to dir and returns its path.
func makeDump(t *testing.T, dir string) string {
	t.Helper()
	var got *fr.Dump
	r := fr.New(fr.Config{
		Size:     1 << 14,
		Triggers: fr.TriggerSpec{Deadlock: true},
		OnDump:   func(d *fr.Dump) { got = d },
		Program:  "examples/deadlock2",
		VM:       "revocation",
		StatsJSON: func() []byte {
			return []byte(`{"rollbacks":1,"wasted_ticks":42}`)
		},
	})
	r.Emit(trace.Event{At: 0, Kind: trace.ThreadStart, Thread: "a", N: 5})
	r.Emit(trace.Event{At: 0, Kind: trace.ThreadStart, Thread: "b", N: 5})
	r.Emit(trace.Event{At: 3, Kind: trace.MonitorAcquired, Thread: "a", Object: "l1"})
	r.Emit(trace.Event{At: 4, Kind: trace.MonitorAcquired, Thread: "b", Object: "l2"})
	r.Emit(trace.Event{At: 5, Kind: trace.MonitorBlocked, Thread: "a", Object: "l2", Other: "b"})
	r.Emit(trace.Event{At: 6, Kind: trace.MonitorBlocked, Thread: "b", Object: "l1", Other: "a"})
	r.Emit(trace.Event{At: 6, Kind: trace.DeadlockDetected, Thread: "b", Object: "l1", Detail: "cycle=b->a->b"})
	if got == nil {
		t.Fatal("deadlock trigger did not fire")
	}
	path := filepath.Join(dir, "dump.rvmfr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteDump(f, got); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummary(t *testing.T) {
	path := makeDump(t, t.TempDir())
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"summary", path}); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{
		"reason:   deadlock",
		"deadlock-detected",
		"program:  examples/deadlock2",
		"vm:       revocation",
		"wrapped:  no",
		"stats:",
		"metrics:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestEvents(t *testing.T) {
	path := makeDump(t, t.TempDir())
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"events", path}); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if n := strings.Count(out.String(), "\n"); n != 7 {
		t.Fatalf("expected 7 event lines, got %d:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "deadlock-detected") {
		t.Fatalf("timeline missing the trigger event:\n%s", out.String())
	}
}

func TestJSONLConversionRoundTrips(t *testing.T) {
	dir := t.TempDir()
	path := makeDump(t, dir)
	jsonlPath := filepath.Join(dir, "trace.jsonl")
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"jsonl", "-o", jsonlPath, path}); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	raw, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	events, info, err := obs.ParseJSONLInfo(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("converted stream invalid: %v", err)
	}
	if info.Truncated {
		t.Fatal("unwrapped dump converted with truncation marker")
	}
	if len(events) != 7 {
		t.Fatalf("%d events after conversion, want 7", len(events))
	}
	if events[6].Kind != trace.DeadlockDetected {
		t.Fatalf("last event %v, want deadlock-detected", events[6].Kind)
	}
}

func TestPerfettoConversion(t *testing.T) {
	dir := t.TempDir()
	path := makeDump(t, dir)
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"perfetto", path}); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("perfetto conversion produced no trace events")
	}
}

func TestMerge(t *testing.T) {
	dir := t.TempDir()
	p1 := makeDump(t, dir)

	// Add a wrapped high-traffic dump for variety.
	r := fr.New(fr.Config{Size: 1 << 12})
	for i := 0; i < 200; i++ {
		r.Emit(trace.Event{At: simtime.Ticks(i * 3), Kind: trace.MonitorBlocked, Thread: "w", Object: "m", Other: "o"})
		r.Emit(trace.Event{At: simtime.Ticks(i*3 + 2), Kind: trace.MonitorAcquired, Thread: "w", Object: "m"})
	}
	d, err := r.Snapshot("")
	if err != nil {
		t.Fatal(err)
	}
	p2 := filepath.Join(dir, "busy.rvmfr")
	f, err := os.Create(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteDump(f, d); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"merge", p1, p2}); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "2 dump(s)") || !strings.Contains(out.String(), "blocking") {
		t.Fatalf("merge table unexpected:\n%s", out.String())
	}

	out.Reset()
	if code := run(&out, &errw, []string{"merge", "-json", p1, p2}); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	var rep fr.FleetReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.DumpCount != 2 || rep.Series["blocking"].Count == 0 {
		t.Fatalf("merged report wrong: %+v", rep)
	}
}

func TestBadInputsExitNonzero(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"summary", junk}); code != 1 {
		t.Fatalf("summary on junk: exit %d", code)
	}
	if code := run(&out, &errw, []string{"wat"}); code != 2 {
		t.Fatalf("unknown command: exit %d", code)
	}
	if code := run(&out, &errw, nil); code != 2 {
		t.Fatalf("no args: exit %d", code)
	}
}
