// Command rvmfr reads flight-recorder dumps (.rvmfr) written by
// `rvmrun -fr` and converts them for inspection:
//
//	rvmfr summary FILE...            identity, trigger context, section sizes
//	rvmfr events FILE                the event window, one line per event
//	rvmfr jsonl [-o OUT] FILE        lossless conversion to the rvm-trace
//	                                 JSONL schema (tracecheck-compatible; a
//	                                 wrapped ring is declared in the meta line)
//	rvmfr perfetto [-o OUT] FILE     replay the window through the observer
//	                                 and export a Perfetto/Chrome trace
//	rvmfr merge [-json] [-o OUT] INPUT...
//	                                 fleet SLO merge: aggregate the latency
//	                                 distributions of many dumps and
//	                                 results/BENCH_*.json trajectory files
//	                                 into one p50/p99/p99.9 report
//	rvmfr critpath FILE              build the happens-before DAG from the
//	                                 window and print the critical-path
//	                                 attribution (best-effort on wrapped
//	                                 rings; exact with invariant check on
//	                                 complete streams)
//
// Exit status is 0 on success, 1 on any unreadable or invalid input, 2 on
// usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/causal"
	"repro/internal/fr"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func usage(errw io.Writer) int {
	fmt.Fprintln(errw, `usage: rvmfr COMMAND ...
  rvmfr summary FILE...                 dump identity and section overview
  rvmfr events FILE                     event window, one line per event
  rvmfr jsonl [-o OUT] FILE             convert to rvm-trace JSONL
  rvmfr perfetto [-o OUT] FILE          convert to a Perfetto trace
  rvmfr merge [-json] [-o OUT] INPUT... fleet SLO merge over dumps and BENCH files
  rvmfr critpath FILE                   critical-path attribution of the event window`)
	return 2
}

func run(out, errw io.Writer, args []string) int {
	if len(args) == 0 {
		return usage(errw)
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "summary":
		if len(rest) == 0 {
			return usage(errw)
		}
		for _, path := range rest {
			if e := summary(out, path); e != nil {
				fmt.Fprintf(errw, "rvmfr: %s: %v\n", path, e)
				err = e
			}
		}
	case "events":
		if len(rest) != 1 {
			return usage(errw)
		}
		err = events(out, rest[0])
	case "critpath":
		if len(rest) != 1 {
			return usage(errw)
		}
		if err = critpath(out, rest[0]); err != nil {
			fmt.Fprintf(errw, "rvmfr: %s: %v\n", rest[0], err)
		}
	case "jsonl", "perfetto":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		fs.SetOutput(errw)
		outPath := fs.String("o", "", "output file (default stdout)")
		if fs.Parse(rest) != nil || fs.NArg() != 1 {
			return usage(errw)
		}
		err = withOutput(out, *outPath, func(w io.Writer) error {
			if cmd == "jsonl" {
				return convertJSONL(w, fs.Arg(0))
			}
			return convertPerfetto(w, fs.Arg(0))
		})
		if err != nil {
			fmt.Fprintf(errw, "rvmfr: %s: %v\n", fs.Arg(0), err)
		}
	case "merge":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		fs.SetOutput(errw)
		asJSON := fs.Bool("json", false, "emit the merged report as JSON")
		outPath := fs.String("o", "", "output file (default stdout)")
		if fs.Parse(rest) != nil || fs.NArg() == 0 {
			return usage(errw)
		}
		err = withOutput(out, *outPath, func(w io.Writer) error {
			rep, merr := fr.MergeFleet(fs.Args())
			if merr != nil {
				return merr
			}
			if *asJSON {
				return rep.WriteJSON(w)
			}
			rep.Render(w)
			return nil
		})
		if err != nil {
			fmt.Fprintf(errw, "rvmfr: merge: %v\n", err)
		}
	default:
		fmt.Fprintf(errw, "rvmfr: unknown command %q\n", cmd)
		return usage(errw)
	}
	if err != nil {
		return 1
	}
	return 0
}

// withOutput runs fn against stdout or a created file.
func withOutput(stdout io.Writer, path string, fn func(io.Writer) error) error {
	if path == "" {
		return fn(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readDump(path string) (*fr.Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return fr.ReadDump(f)
}

// summary prints the dump's identity, trigger context and an overview of
// the captured window: time span, per-kind counts, attached sections.
func summary(out io.Writer, path string) error {
	d, err := readDump(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: .rvmfr v%d\n", path, d.Version)
	fmt.Fprintf(out, "  reason:   %s (dump #%d at tick %d)\n", d.Meta.Reason, d.Meta.Seq, d.Meta.At)
	if d.Meta.Detail != "" {
		fmt.Fprintf(out, "  trigger:  %s\n", d.Meta.Detail)
	}
	if d.Meta.Program != "" {
		fmt.Fprintf(out, "  program:  %s\n", d.Meta.Program)
	}
	if d.Meta.VM != "" {
		fmt.Fprintf(out, "  vm:       %s\n", d.Meta.VM)
	}
	if len(d.Events) > 0 {
		first, last := d.Events[0].At, d.Events[len(d.Events)-1].At
		fmt.Fprintf(out, "  window:   %d events, ticks %d..%d\n", len(d.Events), first, last)
	} else {
		fmt.Fprintf(out, "  window:   empty\n")
	}
	if d.Truncated {
		fmt.Fprintf(out, "  wrapped:  yes (%d older events overwritten)\n", d.Lost)
	} else {
		fmt.Fprintf(out, "  wrapped:  no (complete stream)\n")
	}
	fmt.Fprintf(out, "  strings:  %d interned\n", len(d.Strings))

	counts := map[trace.Kind]int{}
	for _, e := range d.Events {
		counts[e.Kind]++
	}
	kinds := make([]trace.Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		if counts[kinds[i]] != counts[kinds[j]] {
			return counts[kinds[i]] > counts[kinds[j]]
		}
		return kinds[i] < kinds[j]
	})
	if len(kinds) > 0 {
		fmt.Fprintf(out, "  kinds:\n")
		for _, k := range kinds {
			fmt.Fprintf(out, "    %-20s %d\n", k, counts[k])
		}
	}
	section := func(name string, data []byte) {
		if data != nil {
			fmt.Fprintf(out, "  %-9s %d bytes\n", name+":", len(data))
		}
	}
	section("stats", d.StatsJSON)
	section("metrics", d.MetricsJSON)
	section("profile", d.ProfileJSON)
	return nil
}

// events prints the window as the runtime's one-line event rendering.
func events(out io.Writer, path string) error {
	d, err := readDump(path)
	if err != nil {
		return err
	}
	if d.Truncated {
		fmt.Fprintf(out, "# wrapped ring: %d older events overwritten\n", d.Lost)
	}
	for _, e := range d.Events {
		fmt.Fprintln(out, e)
	}
	return nil
}

func convertJSONL(w io.Writer, path string) error {
	d, err := readDump(path)
	if err != nil {
		return err
	}
	return d.WriteJSONL(w)
}

// critpath builds the happens-before DAG from the dump's event window —
// the same pure causal.Build path rvmrun -critpath runs on the live
// stream, so a post-mortem attributes identically to a live run. A
// wrapped ring loses its prefix: the build falls back to best-effort
// (synthetic thread starts, no invariant claim) and says so.
func critpath(w io.Writer, path string) error {
	d, err := readDump(path)
	if err != nil {
		return err
	}
	g, err := causal.Build(d.Events, causal.Options{AllowTruncated: d.Truncated})
	if err != nil {
		return err
	}
	if d.Truncated {
		fmt.Fprintf(w, "# wrapped ring: %d older events overwritten; attribution is best-effort\n", d.Lost)
	} else if err := g.CheckInvariant(); err != nil {
		return fmt.Errorf("critical-path invariant FAILED: %w", err)
	}
	a, err := g.CriticalPath()
	if err != nil {
		return err
	}
	causal.RenderReport(w, g, a, 5)
	return nil
}

func convertPerfetto(w io.Writer, path string) error {
	d, err := readDump(path)
	if err != nil {
		return err
	}
	o := obs.NewObserver()
	for _, e := range d.Events {
		o.Emit(e)
	}
	return obs.WritePerfetto(w, o)
}
