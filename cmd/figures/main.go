// Command figures regenerates the evaluation figures of "Preemption-Based
// Avoidance of Priority Inversion for Java" (ICPP 2004): Figures 5 and 6
// (total elapsed time of high-priority threads at 100K / 500K inner
// iterations) and Figures 7 and 8 (overall elapsed time), each across the
// paper's three thread mixes and six write ratios, on both the modified
// (revocation) and unmodified VM.
//
// Usage:
//
//	figures [-figure N|all] [-scale small|medium|paper] [-csv dir] [-summary] [-v]
//	figures -json results/BENCH_2026-08-05.json [-label NAME]
//	figures -gate results [-gate-json out.json] [-gate-threshold PCT]
//	figures -fleet [-fleet-json out.json] INPUT...
//
// Examples:
//
//	figures -figure 5                  # one figure, quick
//	figures -figure all -scale medium  # the full evaluation
//	figures -figure all -csv out      # also write CSV files
//
// With -json, the wall-clock benchmark suite (barrier/rollback
// micro-benchmarks plus every Figure 5–8 panel) runs under
// testing.Benchmark and its ns/op, B/op and allocs/op are APPENDED to the
// JSON array in the given file — run it before and after a change to record
// a before/after pair in one results/BENCH_<date>.json.
//
// With -fleet, the positional arguments are flight-recorder dumps (.rvmfr)
// and/or BENCH_*.json trajectory files; their latency distributions are
// merged into one p50/p99/p99.9 fleet SLO report (same engine as `rvmfr
// merge`).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/fr"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "figure number (5-8) or \"all\"")
		scale    = flag.String("scale", "small", "run scale: small, medium or paper")
		csvDir   = flag.String("csv", "", "directory to write per-figure CSV files into")
		summary  = flag.Bool("summary", true, "print the headline-claims comparison (requires all figures)")
		verbose  = flag.Bool("v", false, "print per-cell progress")
		cell     = flag.String("cell", "", "run one cell instead: \"HIGH+LOW@WRITES%\", e.g. \"2+8@40\" (uses -figure for the variant)")
		jsonOut  = flag.String("json", "", "append wall-clock benchmark results to this JSON file instead of rendering figures")
		label    = flag.String("label", "current", "label recorded with -json results")
		gateDir  = flag.String("gate", "", "bench-regression gate: compare key ns/op against the newest BENCH_*.json in this directory, exit 1 on regression")
		gateOut  = flag.String("gate-json", "", "with -gate, also write the fresh gate measurements to this JSON file (the CI artifact)")
		gatePct  = flag.Float64("gate-threshold", 20, "with -gate, regression threshold in percent")
		fleet    = flag.Bool("fleet", false, "merge flight-recorder dumps and BENCH_*.json files (positional args) into a fleet SLO report")
		fleetOut = flag.String("fleet-json", "", "with -fleet, also write the merged report as JSON to this file")
	)
	flag.Parse()

	if *fleet {
		runFleet(flag.Args(), *fleetOut)
		return
	}

	if *gateDir != "" {
		runGate(*gateDir, *gateOut, *label, *gatePct)
		return
	}

	if *jsonOut != "" {
		runJSONReport(*jsonOut, *label)
		return
	}

	sc, err := bench.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}

	if *cell != "" {
		runSingleCell(*cell, *figure, sc)
		return
	}

	var numbers []int
	if *figure == "all" {
		for n := range bench.Specs {
			numbers = append(numbers, n)
		}
		sort.Ints(numbers)
	} else {
		var n int
		if _, err := fmt.Sscanf(*figure, "%d", &n); err != nil {
			fatal(fmt.Errorf("bad -figure %q: %v", *figure, err))
		}
		numbers = []int{n}
	}

	var progress bench.Progress
	if *verbose {
		progress = func(mix bench.Mix, wp int, vm bench.VM, res bench.CellResult) {
			fmt.Fprintf(os.Stderr, "  cell %v writes=%d%% %-10v high=%d overall=%d rollbacks=%d\n",
				mix, wp, vm, res.HighSpan, res.OverallSpan, res.Stats.Rollbacks)
		}
	}

	var highFigs, overallFigs []bench.Figure
	for _, n := range numbers {
		start := time.Now()
		fig, err := bench.RunFigure(n, sc, progress)
		if err != nil {
			fatal(err)
		}
		fig.Render(os.Stdout)
		fmt.Fprintf(os.Stderr, "(figure %d took %v)\n", n, time.Since(start).Round(time.Millisecond))
		if fig.Metric == bench.HighPriorityTime {
			highFigs = append(highFigs, fig)
		} else {
			overallFigs = append(overallFigs, fig)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*csvDir, fmt.Sprintf("figure%d.csv", n))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			fig.RenderCSV(f)
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	if *summary && len(highFigs) == 2 && len(overallFigs) == 2 {
		bench.Summarize(highFigs, overallFigs).Render(os.Stdout)
	}
}

// runSingleCell runs one benchmark cell on both VMs — handy at paper scale
// where a full figure takes hours.
func runSingleCell(cell, figure string, sc bench.Scale) {
	var high, low, writes int
	if _, err := fmt.Sscanf(cell, "%d+%d@%d", &high, &low, &writes); err != nil {
		fatal(fmt.Errorf("bad -cell %q (want HIGH+LOW@WRITES, e.g. 2+8@40): %v", cell, err))
	}
	n := 5
	if figure != "all" {
		if _, err := fmt.Sscanf(figure, "%d", &n); err != nil {
			fatal(err)
		}
	}
	spec, ok := bench.Specs[n]
	if !ok {
		fatal(fmt.Errorf("no figure %d", n))
	}
	p := bench.CellParams(sc, spec.ShortHigh, bench.Mix{High: high, Low: low}, writes)
	for _, vm := range []bench.VM{bench.Unmodified, bench.Modified} {
		start := time.Now()
		res, err := bench.RunCell(vm, p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-10v high-span=%-12d overall-span=%-12d rollbacks=%-6d re-exec=%-6d (%v)\n",
			vm, res.HighSpan, res.OverallSpan, res.Stats.Rollbacks, res.Stats.Reexecutions,
			time.Since(start).Round(time.Millisecond))
	}
}

// runJSONReport runs the wall-clock suite and appends it to path.
func runJSONReport(path, label string) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
	}
	// Fail on a malformed target now, not after minutes of benchmarking.
	if _, err := bench.LoadReports(path); err != nil {
		fatal(err)
	}
	progress := func(res bench.BenchResult) {
		fmt.Fprintf(os.Stderr, "  %-28s %12.1f ns/op %8d B/op %6d allocs/op\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	latProgress := func(res bench.LatencyResult) {
		fmt.Fprintf(os.Stderr, "  %-28s %-10s rollback-wasted=%-10d re-exec=%-6d threads-observed=%d\n",
			res.Name, res.VM, res.RollbackWasted.Sum, res.Reexecutions, len(res.BlockingPerThread))
	}
	rep, err := bench.RunReport(label, time.Now().Format("2006-01-02"), progress, latProgress)
	if err != nil {
		fatal(err)
	}
	if err := bench.WriteReport(path, rep); err != nil {
		fatal(err)
	}
	// Profiler digest: the overhead of attribution and where each workload
	// wastes its rolled-back ticks, straight from the recorded pairs.
	for _, pr := range rep.Profiler {
		fmt.Fprintf(os.Stderr, "  %-28s profiler overhead %+.1f%% (off %.0f → on %.0f ns/op)\n",
			pr.Name, pr.OverheadPct, pr.OffNsPerOp, pr.OnNsPerOp)
		for i, site := range pr.TopWaste {
			fmt.Fprintf(os.Stderr, "      waste #%d %-16s pc=%-4d %d ticks\n", i+1, site.Func, site.PC, site.Ticks)
		}
		for i, site := range pr.TopBlock {
			fmt.Fprintf(os.Stderr, "      block #%d %-16s pc=%-4d %d ticks\n", i+1, site.Func, site.PC, site.Ticks)
		}
	}
	fmt.Fprintf(os.Stderr, "appended %q (%d benchmarks, %d profiled cells) to %s\n",
		label, len(rep.Benchmarks), len(rep.Profiler), path)
}

// runGate re-measures the key micro-benchmarks (best of three) and fails
// the process when any ns/op regresses past the threshold relative to the
// newest committed trajectory entry in dir. With outPath, the fresh
// measurements are appended there as a new trajectory entry so CI can
// upload them as an artifact.
func runGate(dir, outPath, label string, thresholdPct float64) {
	if outPath != "" {
		if d := filepath.Dir(outPath); d != "." {
			if err := os.MkdirAll(d, 0o755); err != nil {
				fatal(err)
			}
		}
		if _, err := bench.LoadReports(outPath); err != nil {
			fatal(err)
		}
	}
	progress := func(e bench.GateEntry) {
		switch {
		case e.Missing:
			fmt.Fprintf(os.Stderr, "  %-36s %12.1f ns/op   (no baseline)\n", e.Name, e.Current)
		case e.Regressed:
			fmt.Fprintf(os.Stderr, "  %-36s %12.1f ns/op  %+7.1f%% vs %.1f  REGRESSED\n",
				e.Name, e.Current, e.DeltaPct, e.Baseline)
		default:
			fmt.Fprintf(os.Stderr, "  %-36s %12.1f ns/op  %+7.1f%% vs %.1f  ok\n",
				e.Name, e.Current, e.DeltaPct, e.Baseline)
		}
	}
	g, err := bench.RunGate(dir, label, time.Now().Format("2006-01-02"), thresholdPct/100, progress)
	if err != nil {
		fatal(err)
	}
	if outPath != "" {
		if err := bench.WriteReport(outPath, g.Report); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote gate measurements to %s\n", outPath)
	}
	if g.Failed() {
		fatal(fmt.Errorf("bench gate FAILED: key ns/op regressed >%.0f%% vs %s (label %q, %s)",
			thresholdPct, g.BaselinePath, g.BaselineLabel, g.BaselineDate))
	}
	fmt.Fprintf(os.Stderr, "bench gate passed: %d benchmarks within %.0f%% of %s (label %q, %s)\n",
		len(g.Entries), thresholdPct, g.BaselinePath, g.BaselineLabel, g.BaselineDate)
}

// runFleet merges dumps and BENCH trajectory files into the fleet SLO
// report — the aggregation half of the fleet harness (ROADMAP item 3).
func runFleet(inputs []string, outPath string) {
	if len(inputs) == 0 {
		fatal(fmt.Errorf("-fleet needs at least one .rvmfr dump or BENCH_*.json file"))
	}
	rep, err := fr.MergeFleet(inputs)
	if err != nil {
		fatal(err)
	}
	rep.Render(os.Stdout)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fatal(err)
		}
		err = rep.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote fleet SLO report to %s\n", outPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
