// Package repro's top-level benchmarks regenerate every figure of the
// paper's evaluation section (one benchmark per figure panel) and measure
// the mechanism's primitive costs (write barrier, logging, rollback,
// monitor operations, context switch).
//
// Run the figure benches with:
//
//	go test -bench 'Figure' -benchmem
//
// Each figure benchmark reports the reproduced normalized series via
// b.ReportMetric: "mod@0w" / "mod@100w" are the MODIFIED series at 0 % and
// 100 % writes (UNMODIFIED at 0 % writes ≡ 1.0 by construction), matching
// the y-axes of the paper's plots.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/rewrite"
	"repro/internal/sched"
	"repro/revoke"
)

// benchFigurePanel runs one panel of one figure per benchmark iteration.
func benchFigurePanel(b *testing.B, figure, panel int) {
	spec := bench.Specs[figure]
	var first, last float64
	for i := 0; i < b.N; i++ {
		fig, err := bench.RunFigure(figure, bench.ScaleSmall, nil)
		if err != nil {
			b.Fatal(err)
		}
		pts := fig.Panels[panel].Points
		first, last = pts[0].Modified, pts[len(pts)-1].Modified
	}
	_ = spec
	b.ReportMetric(first, "mod@0w")
	b.ReportMetric(last, "mod@100w")
}

// Figures 5 and 6: total elapsed time of high-priority threads (§4.2).

func BenchmarkFigure5PanelA_2High8Low(b *testing.B) { benchFigurePanel(b, 5, 0) }
func BenchmarkFigure5PanelB_5High5Low(b *testing.B) { benchFigurePanel(b, 5, 1) }
func BenchmarkFigure5PanelC_8High2Low(b *testing.B) { benchFigurePanel(b, 5, 2) }

func BenchmarkFigure6PanelA_2High8Low(b *testing.B) { benchFigurePanel(b, 6, 0) }
func BenchmarkFigure6PanelB_5High5Low(b *testing.B) { benchFigurePanel(b, 6, 1) }
func BenchmarkFigure6PanelC_8High2Low(b *testing.B) { benchFigurePanel(b, 6, 2) }

// Figures 7 and 8: overall elapsed time (§4.2).

func BenchmarkFigure7PanelA_2High8Low(b *testing.B) { benchFigurePanel(b, 7, 0) }
func BenchmarkFigure7PanelB_5High5Low(b *testing.B) { benchFigurePanel(b, 7, 1) }
func BenchmarkFigure7PanelC_8High2Low(b *testing.B) { benchFigurePanel(b, 7, 2) }

func BenchmarkFigure8PanelA_2High8Low(b *testing.B) { benchFigurePanel(b, 8, 0) }
func BenchmarkFigure8PanelB_5High5Low(b *testing.B) { benchFigurePanel(b, 8, 1) }
func BenchmarkFigure8PanelC_8High2Low(b *testing.B) { benchFigurePanel(b, 8, 2) }

// ---------------------------------------------------------------------------
// Primitive-cost micro-benchmarks (wall clock, NoCosts mode so the virtual
// clock does not interfere).

// BenchmarkWriteBarrierOutsideSection measures the fast path: a store with
// no active synchronized section (the "fast-path test on every non-local
// update", §1.1).
func BenchmarkWriteBarrierOutsideSection(b *testing.B) {
	rt := core.New(core.Config{Mode: core.Revocation, NoCosts: true})
	o := rt.Heap().AllocPlain("C", 1)
	rt.Spawn("w", sched.NormPriority, func(tk *core.Task) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tk.WriteField(o, 0, heap.Word(i))
		}
	})
	if err := rt.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWriteBarrierLogging measures the slow path: a store inside a
// synchronized section, appending to the undo log.
func BenchmarkWriteBarrierLogging(b *testing.B) {
	rt := core.New(core.Config{Mode: core.Revocation, NoCosts: true})
	o := rt.Heap().AllocPlain("C", 1)
	m := rt.NewMonitor("m")
	rt.Spawn("w", sched.NormPriority, func(tk *core.Task) {
		tk.Synchronized(m, func() {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tk.WriteField(o, 0, heap.Word(i))
			}
		})
	})
	if err := rt.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWriteBarrierLoggingTracked adds §2.2 dependency registration.
func BenchmarkWriteBarrierLoggingTracked(b *testing.B) {
	rt := core.New(core.Config{Mode: core.Revocation, NoCosts: true, TrackDependencies: true})
	o := rt.Heap().AllocPlain("C", 64)
	m := rt.NewMonitor("m")
	rt.Spawn("w", sched.NormPriority, func(tk *core.Task) {
		tk.Synchronized(m, func() {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tk.WriteField(o, i%64, heap.Word(i))
			}
		})
	})
	if err := rt.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReadUnmodifiedVM is the reference read with no barriers at all.
func BenchmarkReadUnmodifiedVM(b *testing.B) {
	rt := core.New(core.Config{Mode: core.Unmodified, NoCosts: true})
	o := rt.Heap().AllocPlain("C", 1)
	var sink heap.Word
	rt.Spawn("r", sched.NormPriority, func(tk *core.Task) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink = tk.ReadField(o, 0)
		}
	})
	if err := rt.Run(); err != nil {
		b.Fatal(err)
	}
	_ = sink
}

// BenchmarkRollback measures one full revocation cycle — detection,
// preemption, reverse replay of a 1000-entry log, monitor handoff — as
// seen by the high-priority requester.
func BenchmarkRollback(b *testing.B) {
	const writes = 1000
	rt := core.New(core.Config{Mode: core.Revocation, NoCosts: true, Sched: sched.Config{Quantum: 1 << 40}})
	a := rt.Heap().AllocArray(writes)
	m := rt.NewMonitor("m")
	// Handshake: low fills the log and raises ready; high clears ready and
	// contends, revoking the section; repeat b.N times, then done.
	ready, done := false, false
	rt.Spawn("low", sched.LowPriority, func(tk *core.Task) {
		for !done {
			tk.Synchronized(m, func() {
				if done {
					return
				}
				for k := 0; k < writes; k++ {
					tk.WriteElem(a, k, heap.Word(k))
				}
				ready = true
				// Yield until revoked (virtual time is frozen under
				// NoCosts, so quantum expiry never yields for us).
				for !done && ready {
					tk.Thread().Yield()
					tk.YieldPoint() // delivers the pending revocation
				}
			})
		}
	})
	rt.Spawn("high", sched.HighPriority, func(tk *core.Task) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for !ready {
				tk.Thread().Yield()
			}
			ready = false
			tk.Synchronized(m, func() {})
		}
		b.StopTimer()
		done = true
	})
	if err := rt.Run(); err != nil {
		b.Fatal(err)
	}
	if got := rt.Stats().Rollbacks; got < int64(b.N) {
		b.Fatalf("only %d rollbacks in %d iterations", got, b.N)
	}
}

// BenchmarkMonitorEnterUncontended measures one uncontended monitorenter
// per lock-word variant: thin (single-word fast path), inflated (full
// prioritized-queue monitor, Config.DisableThinLocks), and nonrevocable
// (the core engine's fused entry for statically proven sections). One
// iteration is an enter+exit pair; the ns/op metric is per operation.
func BenchmarkMonitorEnterUncontended(b *testing.B) {
	for _, v := range bench.MonitorVariants {
		b.Run(v, bench.MonitorEnterUncontendedBench(v))
	}
}

// BenchmarkMonitorExitUncontended is the exit half of the pair above.
func BenchmarkMonitorExitUncontended(b *testing.B) {
	for _, v := range bench.MonitorVariants {
		b.Run(v, bench.MonitorExitUncontendedBench(v))
	}
}

// BenchmarkElidedWriteBarrier measures a store whose barrier the static
// analysis removed (the RAW opcode runtime sequence).
func BenchmarkElidedWriteBarrier(b *testing.B) {
	bench.ElidedWriteBarrierBench(b)
}

// BenchmarkFlightRecorderAppend measures one steady-state flight-recorder
// Emit — the per-event price of always-on recording. The bench gate holds
// this under regression; the absolute budget (<50 ns/op, 0 allocs) is
// pinned by TestFlightRecorderAppendBudget in internal/bench.
func BenchmarkFlightRecorderAppend(b *testing.B) {
	bench.FlightRecorderAppendBench(b)
}

// BenchmarkCritPathBuild times happens-before DAG construction, invariant
// check and critical-path extraction over a pre-recorded cell stream —
// the post-processing a -critpath run adds after the program finishes.
func BenchmarkCritPathBuild(b *testing.B) {
	bench.CritPathBuildBench(b)
}

// BenchmarkFlightRecorderCell runs the same contended 2+8 cell with the
// flight recorder detached and attached; the off/on delta is the
// recorder's whole-run overhead.
func BenchmarkFlightRecorderCell(b *testing.B) {
	b.Run("off", bench.FlightRecorderCellBench(false))
	b.Run("on", bench.FlightRecorderCellBench(true))
}

// BenchmarkConfinedMonitorEnterExit runs the same confined-lock loop with
// real thin-lock monitors (off) and with the certified whole-monitor
// elision applied (on); the ns/op metric is per monitor operation and the
// off/on delta is what the escape analysis buys end to end.
func BenchmarkConfinedMonitorEnterExit(b *testing.B) {
	b.Run("off", bench.ConfinedMonitorEnterExitBench(false))
	b.Run("on", bench.ConfinedMonitorEnterExitBench(true))
}

// BenchmarkTierDispatch compares threaded-closure dispatch against fused
// superinstruction dispatch on workloads whose hot methods cross the
// tier-3 promotion threshold.
func BenchmarkTierDispatch(b *testing.B) {
	for _, p := range bench.TierPrograms {
		for _, tier := range []interp.Tier{interp.TierThreaded, interp.TierOpt} {
			b.Run(p.Name+"/"+tier.String(), bench.TierDispatchBench(p, tier))
		}
	}
}

// BenchmarkMonitorEnterExit measures an uncontended synchronized section.
func BenchmarkMonitorEnterExit(b *testing.B) {
	rt := core.New(core.Config{Mode: core.Revocation, NoCosts: true})
	m := rt.NewMonitor("m")
	rt.Spawn("t", sched.NormPriority, func(tk *core.Task) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tk.Synchronized(m, func() {})
		}
	})
	if err := rt.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkContextSwitch measures a scheduler round trip between two
// threads.
func BenchmarkContextSwitch(b *testing.B) {
	s := sched.New(sched.Config{Quantum: 1})
	mk := func(name string) {
		s.Spawn(name, sched.NormPriority, func(th *sched.Thread) {
			for i := 0; i < b.N; i++ {
				th.Yield()
			}
		})
	}
	mk("a")
	mk("b")
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (design choices called out in DESIGN.md).

// BenchmarkAblationProtocols compares the high-priority makespan of every
// lock protocol on the paper's 2+8 workload at 40 % writes.
func BenchmarkAblationProtocols(b *testing.B) {
	for _, proto := range []revoke.Protocol{
		revoke.ProtocolUnmodified, revoke.ProtocolInheritance,
		revoke.ProtocolCeiling, revoke.ProtocolRevocation,
	} {
		b.Run(proto.String(), func(b *testing.B) {
			var span revoke.Ticks
			for i := 0; i < b.N; i++ {
				span = runProtocolCell(b, proto)
			}
			b.ReportMetric(float64(span), "high-span-ticks")
		})
	}
}

func runProtocolCell(b *testing.B, proto revoke.Protocol) revoke.Ticks {
	p := benchParams()
	rt := revoke.NewBaseline(proto, revoke.SchedConfig{Quantum: p.Quantum, Seed: p.Seed})
	buf := rt.Heap().AllocArray(p.BufferLen)
	m := rt.NewMonitor("shared")
	m.Ceiling = revoke.HighPriority
	var highs []*revoke.Task
	body := func(iters int, seed int64) func(*revoke.Task) {
		return func(tk *revoke.Task) {
			rng := rt.Scheduler().Rng()
			for s := 0; s < p.Sections; s++ {
				tk.Sleep(revoke.Ticks(rng.Int63n(int64(2 * p.Quantum))))
				tk.Synchronized(m, func() {
					for i := 0; i < iters; i++ {
						if i%2 == 0 {
							tk.WriteElem(buf, i%p.BufferLen, revoke.Word(i))
						} else {
							tk.ReadElem(buf, i%p.BufferLen)
						}
					}
				})
			}
		}
	}
	for i := 0; i < 2; i++ {
		highs = append(highs, rt.Spawn(fmt.Sprintf("high%d", i), revoke.HighPriority, body(p.HighIters, int64(i))))
	}
	for i := 0; i < 8; i++ {
		rt.Spawn(fmt.Sprintf("low%d", i), revoke.LowPriority, body(p.LowIters, int64(100+i)))
	}
	if err := rt.Run(); err != nil {
		b.Fatal(err)
	}
	start := highs[0].Thread().StartedAt()
	end := highs[0].Thread().EndedAt()
	for _, h := range highs[1:] {
		if s := h.Thread().StartedAt(); s < start {
			start = s
		}
		if e := h.Thread().EndedAt(); e > end {
			end = e
		}
	}
	return end - start
}

func benchParams() bench.Params {
	return bench.Params{
		Sections: 10, LowIters: 1500, HighIters: 300,
		Quantum: 4000, BufferLen: 256, Seed: 20040815,
	}
}

// BenchmarkAblationDetection compares acquire-time vs periodic inversion
// detection.
func BenchmarkAblationDetection(b *testing.B) {
	for _, det := range []core.DetectMode{core.DetectOnAcquire, core.DetectPeriodic, core.DetectBoth} {
		b.Run(det.String(), func(b *testing.B) {
			var span revoke.Ticks
			for i := 0; i < b.N; i++ {
				p := benchParams()
				rt := core.New(core.Config{
					Mode:   core.Revocation,
					Detect: det,
					Sched:  sched.Config{Quantum: p.Quantum, Seed: p.Seed},
				})
				buf := rt.Heap().AllocArray(p.BufferLen)
				m := rt.NewMonitor("m")
				var high *core.Task
				high = rt.Spawn("high", sched.HighPriority, func(tk *core.Task) {
					rng := rt.Scheduler().Rng()
					for s := 0; s < p.Sections; s++ {
						tk.Sleep(revoke.Ticks(rng.Int63n(int64(2 * p.Quantum))))
						tk.Synchronized(m, func() {
							for k := 0; k < p.HighIters; k++ {
								tk.ReadElem(buf, k%p.BufferLen)
							}
						})
					}
				})
				for j := 0; j < 4; j++ {
					rt.Spawn(fmt.Sprintf("low%d", j), sched.LowPriority, func(tk *core.Task) {
						rng := rt.Scheduler().Rng()
						for s := 0; s < p.Sections; s++ {
							tk.Sleep(revoke.Ticks(rng.Int63n(int64(2 * p.Quantum))))
							tk.Synchronized(m, func() {
								for k := 0; k < p.LowIters; k++ {
									tk.WriteElem(buf, k%p.BufferLen, revoke.Word(k))
								}
							})
						}
					})
				}
				if err := rt.Run(); err != nil {
					b.Fatal(err)
				}
				span = high.Thread().EndedAt() - high.Thread().StartedAt()
			}
			b.ReportMetric(float64(span), "high-span-ticks")
		})
	}
}

// BenchmarkBankWorkload runs the realistic multi-lock application under
// every protocol, reporting the high-priority auditors' worst-case latency
// (the figure of merit) alongside wall time.
func BenchmarkBankWorkload(b *testing.B) {
	for _, proto := range []revoke.Protocol{
		revoke.ProtocolUnmodified, revoke.ProtocolInheritance,
		revoke.ProtocolCeiling, revoke.ProtocolRevocation,
	} {
		b.Run(proto.String(), func(b *testing.B) {
			var worst revoke.Ticks
			for i := 0; i < b.N; i++ {
				res, err := bench.RunBank(proto, bench.DefaultBankParams())
				if err != nil {
					b.Fatal(err)
				}
				worst = res.AuditWorst
			}
			b.ReportMetric(float64(worst), "audit-worst-ticks")
		})
	}
}

// BenchmarkCompilerTiers compares the switch interpreter against the
// threaded-code tier on a compute-heavy bytecode loop.
func BenchmarkCompilerTiers(b *testing.B) {
	src := `
static acc = 0
thread t priority 5 run main
method main locals 1 {
    const 2000
    store 0
  loop:
    load 0
    ifz done
    getstatic acc
    load 0
    add
    putstatic acc
    load 0
    const 1
    sub
    store 0
    goto loop
  done:
    return
}
`
	for _, tc := range []struct {
		name string
		tier interp.Tier
	}{{"interpreter", interp.TierExec}, {"threaded", interp.TierThreaded}, {"opt", interp.TierOpt}} {
		b.Run(tc.name, func(b *testing.B) {
			prog := bytecode.MustAssemble(src)
			for i := 0; i < b.N; i++ {
				rt := core.New(core.Config{Mode: core.Revocation, NoCosts: true})
				// OptCallThreshold 1: main runs once, so the opt tier only
				// exercises fusion if promotion happens at first activation.
				if _, err := interp.Run(rt, prog.Clone(), interp.Options{Tier: tc.tier, OptCallThreshold: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBarrierElision measures the §1.1 optimization: stores
// in methods proven to run outside synchronized sections skip the barrier.
func BenchmarkAblationBarrierElision(b *testing.B) {
	src := `
static acc = 0
thread t priority 5 run main
method main locals 1 {
    const 3000
    store 0
  loop:
    load 0
    ifz done
    load 0
    putstatic acc
    load 0
    const 1
    sub
    store 0
    goto loop
  done:
    return
}
`
	for _, elide := range []bool{false, true} {
		name := "barriers"
		if elide {
			name = "elided"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog := bytecode.MustAssemble(src)
				if elide {
					rewrite.ApplyElision(prog, nil)
				}
				rt := core.New(core.Config{Mode: core.Revocation, NoCosts: true})
				if _, err := interp.Run(rt, prog, interp.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDependencyTracking measures the cost of the §2.2 read
// and write barriers on the benchmark loop.
func BenchmarkAblationDependencyTracking(b *testing.B) {
	for _, track := range []bool{false, true} {
		name := "off"
		if track {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			rt := core.New(core.Config{Mode: core.Revocation, NoCosts: true, TrackDependencies: track})
			buf := rt.Heap().AllocArray(256)
			m := rt.NewMonitor("m")
			rt.Spawn("t", sched.NormPriority, func(tk *core.Task) {
				tk.Synchronized(m, func() {
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if i%2 == 0 {
							tk.WriteElem(buf, i%256, revoke.Word(i))
						} else {
							tk.ReadElem(buf, i%256)
						}
					}
				})
			})
			if err := rt.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationQueueDiscipline compares the paper's prioritized
// monitor queues against plain FIFO queues on the 2+8 workload — the
// measurement-methodology choice §4 calls out.
func BenchmarkAblationQueueDiscipline(b *testing.B) {
	for _, fifo := range []bool{false, true} {
		name := "prioritized"
		if fifo {
			name = "fifo"
		}
		b.Run(name, func(b *testing.B) {
			var span revoke.Ticks
			for i := 0; i < b.N; i++ {
				p := benchParams()
				rt := core.New(core.Config{
					Mode:              core.Revocation,
					FIFOMonitorQueues: fifo,
					Sched:             sched.Config{Quantum: p.Quantum, Seed: p.Seed},
				})
				buf := rt.Heap().AllocArray(p.BufferLen)
				m := rt.NewMonitor("m")
				var highs []*core.Task
				body := func(iters int) func(*core.Task) {
					return func(tk *core.Task) {
						rng := rt.Scheduler().Rng()
						for s := 0; s < p.Sections; s++ {
							tk.Sleep(revoke.Ticks(rng.Int63n(int64(2 * p.Quantum))))
							tk.Synchronized(m, func() {
								for k := 0; k < iters; k++ {
									tk.ReadElem(buf, k%p.BufferLen)
								}
							})
						}
					}
				}
				for j := 0; j < 2; j++ {
					highs = append(highs, rt.Spawn(fmt.Sprintf("high%d", j), sched.HighPriority, body(p.HighIters)))
				}
				for j := 0; j < 8; j++ {
					rt.Spawn(fmt.Sprintf("low%d", j), sched.LowPriority, body(p.LowIters))
				}
				if err := rt.Run(); err != nil {
					b.Fatal(err)
				}
				start := highs[0].Thread().StartedAt()
				end := highs[0].Thread().EndedAt()
				for _, h := range highs[1:] {
					if s := h.Thread().StartedAt(); s < start {
						start = s
					}
					if e := h.Thread().EndedAt(); e > end {
						end = e
					}
				}
				span = end - start
			}
			b.ReportMetric(float64(span), "high-span-ticks")
		})
	}
}
