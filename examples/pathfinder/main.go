// Pathfinder: the classic unbounded priority inversion scenario (the Mars
// Pathfinder failure mode the paper's introduction describes): a
// low-priority thread holds a shared resource, an unbounded supply of
// runnable medium-priority threads keeps it from running, and a
// high-priority thread misses its deadline waiting for the resource.
//
// The program runs the same scenario under four lock-management protocols
// — plain blocking, priority inheritance, priority ceiling, and the
// paper's revocation scheme — and reports when the high-priority thread
// completes each of its periodic jobs.
//
//	go run ./examples/pathfinder
package main

import (
	"fmt"
	"os"

	"repro/revoke"
)

const (
	jobs         = 5
	sectionWork  = 3000 // low thread's work inside the resource section
	mediumWork   = 8000 // CPU-hog burst per medium thread
	highDeadline = 2500 // informal deadline per high job, in ticks
)

func runScenario(proto revoke.Protocol) (completions []revoke.Ticks) {
	rt := revoke.NewBaseline(proto, revoke.SchedConfig{
		Quantum: 100,
		Policy:  revoke.PriorityRR, // a real-time priority scheduler
		Seed:    42,
	})
	bus := rt.NewMonitor("information-bus")
	bus.Ceiling = revoke.HighPriority

	// The meteorological data thread: low priority, long bus sections.
	rt.Spawn("weather(low)", revoke.LowPriority, func(t *revoke.Task) {
		for i := 0; i < jobs*2; i++ {
			t.Synchronized(bus, func() { t.Work(sectionWork) })
			t.Sleep(50)
		}
	})

	// Communication tasks: medium priority, pure CPU, no bus use.
	for i := 0; i < 3; i++ {
		rt.Spawn(fmt.Sprintf("comms%d(med)", i), revoke.NormPriority, func(t *revoke.Task) {
			for j := 0; j < jobs; j++ {
				t.Sleep(120)
				t.Work(mediumWork)
			}
		})
	}

	// The bus-management thread: high priority, short periodic bus jobs.
	rt.Spawn("bus-mgmt(high)", revoke.HighPriority, func(t *revoke.Task) {
		for i := 0; i < jobs; i++ {
			start := rt.Now()
			t.Synchronized(bus, func() { t.Work(100) })
			completions = append(completions, rt.Now()-start)
			t.Sleep(200)
		}
	})

	if err := rt.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "%v: %v\n", proto, err)
		os.Exit(1)
	}
	return completions
}

func main() {
	fmt.Println("Mars-Pathfinder-style scenario: 1 low (holds bus), 3 medium (CPU hogs), 1 high (needs bus)")
	fmt.Printf("high-priority job latencies in virtual ticks (informal deadline %d):\n\n", highDeadline)

	for _, proto := range []revoke.Protocol{
		revoke.ProtocolUnmodified,
		revoke.ProtocolInheritance,
		revoke.ProtocolCeiling,
		revoke.ProtocolRevocation,
	} {
		lat := runScenario(proto)
		worst := revoke.Ticks(0)
		missed := 0
		for _, l := range lat {
			if l > worst {
				worst = l
			}
			if l > highDeadline {
				missed++
			}
		}
		fmt.Printf("  %-12v jobs=%v  worst=%-7d missed-deadlines=%d/%d\n",
			proto, lat, worst, missed, len(lat))
	}

	fmt.Println("\nPlain blocking lets medium threads starve the lock-holding low thread")
	fmt.Println("(unbounded inversion); inheritance, ceiling and revocation all bound it —")
	fmt.Println("revocation without any programmer annotations or priority surgery.")
}
