// JMM: why some sections must become non-revocable (§2.2, Figures 2-3).
//
// Rollback must never make a value another thread legitimately observed
// vanish "out of thin air". This program reproduces the paper's two
// problematic executions and shows the runtime marking the involved
// monitors non-revocable, so a later revocation attempt is denied and the
// high-priority thread simply waits:
//
//  1. Figure 2 — nesting: T writes v under outer+inner and releases inner;
//     T' reads v under inner. Revoking outer would undo a write T' saw.
//
//  2. Figure 3 — volatile: T writes a volatile inside a monitor; T' reads
//     it with no monitor at all (volatile accesses synchronize on their
//     own in the JMM).
//
//     go run ./examples/jmm
package main

import (
	"fmt"
	"os"

	"repro/revoke"
)

func figure2() {
	fmt.Println("Figure 2 — read-write dependency through a nested monitor:")
	var rec revoke.TraceRecorder
	rt := revoke.NewRuntime(revoke.Config{
		Mode: revoke.Revocation, TrackDependencies: true,
		Tracer: &rec, Sched: revoke.SchedConfig{Quantum: 100},
	})
	h := rt.Heap()
	v := h.AllocObject("V", revoke.FieldSpec{Name: "v"})
	outer := rt.NewMonitor("outer")
	inner := rt.NewMonitor("inner")

	rt.Spawn("T", revoke.LowPriority, func(t *revoke.Task) {
		t.Synchronized(outer, func() {
			t.Synchronized(inner, func() { t.WriteField(v, 0, 42) })
			t.Work(2000) // outer still open; v=42 is speculative
		})
	})
	rt.Spawn("T'", revoke.NormPriority, func(t *revoke.Task) {
		t.Work(60)
		t.Synchronized(inner, func() {
			fmt.Printf("  T' reads v=%d under inner — dependency created\n", t.ReadField(v, 0))
		})
	})
	rt.Spawn("Th", revoke.HighPriority, func(t *revoke.Task) {
		t.Work(200)
		t.Synchronized(outer, func() {}) // revocation will be denied
	})
	if err := rt.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report(rt, &rec)
}

func figure3() {
	fmt.Println("\nFigure 3 — volatile write observed without any monitor:")
	var rec revoke.TraceRecorder
	rt := revoke.NewRuntime(revoke.Config{
		Mode: revoke.Revocation, TrackDependencies: true,
		Tracer: &rec, Sched: revoke.SchedConfig{Quantum: 100},
	})
	h := rt.Heap()
	vol := h.DefineStatic("vol", true, 0)
	m := rt.NewMonitor("M")

	rt.Spawn("T", revoke.LowPriority, func(t *revoke.Task) {
		t.Synchronized(m, func() {
			t.WriteStatic(vol, 1)
			t.Work(2000)
		})
	})
	rt.Spawn("T'", revoke.NormPriority, func(t *revoke.Task) {
		t.Work(60)
		fmt.Printf("  T' reads volatile=%d with no lock — dependency created\n", t.ReadStatic(vol))
	})
	rt.Spawn("Th", revoke.HighPriority, func(t *revoke.Task) {
		t.Work(200)
		t.Synchronized(m, func() {})
	})
	if err := rt.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report(rt, &rec)
}

func properlySynchronized() {
	fmt.Println("\nControl — same data, every access under the same monitor:")
	rt := revoke.NewRuntime(revoke.Config{
		Mode: revoke.Revocation, TrackDependencies: true,
		Sched: revoke.SchedConfig{Quantum: 100},
	})
	h := rt.Heap()
	v := h.AllocObject("V", revoke.FieldSpec{Name: "v"})
	m := rt.NewMonitor("M")
	rt.Spawn("T", revoke.LowPriority, func(t *revoke.Task) {
		t.Synchronized(m, func() {
			t.WriteField(v, 0, 7)
			t.Work(2000)
		})
	})
	rt.Spawn("T'", revoke.NormPriority, func(t *revoke.Task) {
		t.Work(60)
		t.Synchronized(m, func() { t.ReadField(v, 0) })
	})
	rt.Spawn("Th", revoke.HighPriority, func(t *revoke.Task) {
		t.Work(200)
		t.Synchronized(m, func() {})
	})
	if err := rt.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := rt.Stats()
	fmt.Printf("  dependencies=%d non-revocable-marks=%d rollbacks=%d — mutual exclusion\n",
		st.Dependencies, st.NonRevocableMarks, st.Rollbacks)
	fmt.Println("  prevents problematic dependencies, so revocability is preserved (§2.2).")
}

func report(rt *revoke.Runtime, rec *revoke.TraceRecorder) {
	st := rt.Stats()
	fmt.Printf("  dependencies=%d non-revocable-marks=%d revocations-denied=%d rollbacks=%d\n",
		st.Dependencies, st.NonRevocableMarks, st.RevocationsDenied, st.Rollbacks)
	for _, e := range rec.Events() {
		if e.Kind.String() == "non-revocable" || e.Kind.String() == "revoke-denied" {
			fmt.Printf("    %v\n", e)
		}
	}
}

func main() {
	figure2()
	figure3()
	properlySynchronized()
}
