// Bytecode: the full compiler pipeline on the paper's Figure 1 scenario.
//
// This example assembles the program in inversion.rvm, shows the rewriter's
// transformations (rollback scopes, operand-stack save/restore, CHECKTARGET
// handlers), and runs it on both VMs, comparing what the high-priority
// thread observes.
//
//	go run ./examples/bytecode
package main

import (
	_ "embed"
	"fmt"
	"os"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/rewrite"
	"repro/internal/sched"
)

//go:embed inversion.rvm
var src string

func main() {
	prog, err := bytecode.Assemble(src)
	if err != nil {
		fail(err)
	}
	rewritten, err := rewrite.Rewrite(prog)
	if err != nil {
		fail(err)
	}

	m, _ := rewritten.Method("lowMain")
	fmt.Println("lowMain after the paper's bytecode rewriting (§3.1.1):")
	fmt.Print(bytecode.Disassemble(m))
	fmt.Println()

	for _, mode := range []core.Mode{core.Unmodified, core.Revocation} {
		p := prog
		opts := interp.Options{Out: os.Stdout}
		if mode == core.Revocation {
			p = rewritten
			opts.Rewritten = true
		}
		rt := core.New(core.Config{
			Mode:              mode,
			TrackDependencies: true,
			Sched:             sched.Config{Quantum: 1000},
		})
		fmt.Printf("--- %v VM (prints: Th's view of o1, then Tl's final o1) ---\n", mode)
		if _, err := interp.Run(rt, p, opts); err != nil {
			fail(err)
		}
		st := rt.Stats()
		fmt.Printf("rollbacks=%d re-executions=%d entries-undone=%d\n\n",
			st.Rollbacks, st.Reexecutions, st.EntriesUndone)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
