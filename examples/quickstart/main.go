// Quickstart: the paper's Figure 1 as a runnable program.
//
// A low-priority thread Tl enters a synchronized section and starts
// updating shared objects. A high-priority thread Th arrives at the same
// monitor. On the revocation VM, Tl is preempted at its next yield point,
// its updates are rolled back, Th runs the section, and Tl transparently
// re-executes — watch the trace to see every step.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/revoke"
)

func main() {
	var rec revoke.TraceRecorder
	rt := revoke.NewRuntime(revoke.Config{
		Mode:              revoke.Revocation,
		TrackDependencies: true,
		Tracer:            &rec,
		Sched:             revoke.SchedConfig{Quantum: 100},
	})

	h := rt.Heap()
	o1 := h.AllocObject("o1", revoke.FieldSpec{Name: "x"})
	o2 := h.AllocObject("o2", revoke.FieldSpec{Name: "x"})
	mon := rt.NewMonitor("M")

	rt.Spawn("Tl", revoke.LowPriority, func(t *revoke.Task) {
		t.Synchronized(mon, func() {
			t.WriteField(o1, 0, 41) // speculative update
			t.Work(2000)            // long computation while holding M
			t.WriteField(o2, 0, 42)
		})
		fmt.Printf("Tl finished at t=%d (o1.x=%d o2.x=%d)\n", rt.Now(), o1.Get(0), o2.Get(0))
	})

	rt.Spawn("Th", revoke.HighPriority, func(t *revoke.Task) {
		t.Work(50) // arrive after Tl holds M
		t.Synchronized(mon, func() {
			// Tl's speculative write to o1 has been revoked: we see 0.
			fmt.Printf("Th entered M at t=%d, sees o1.x=%d (rolled back)\n", rt.Now(), t.ReadField(o1, 0))
			t.WriteField(o1, 0, 1)
			t.WriteField(o2, 0, 2)
		})
		fmt.Printf("Th finished at t=%d\n", rt.Now())
	})

	if err := rt.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}

	st := rt.Stats()
	fmt.Printf("\nstats: inversions=%d revocations=%d rollbacks=%d entries-undone=%d re-executions=%d\n",
		st.Inversions, st.RevocationRequests, st.Rollbacks, st.EntriesUndone, st.Reexecutions)

	fmt.Println("\ntimeline ('#' dispatched, 'R' rollback):")
	fmt.Print(trace.Timeline(rec.Events(), 64))

	fmt.Println("\ntrace:")
	rec.Dump(os.Stdout)
}
