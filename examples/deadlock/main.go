// Deadlock: automatic detection and resolution by revocation (§1.1).
//
// Two transfer threads acquire two account monitors in opposite orders —
// the textbook deadlock. On the unmodified VM the program wedges; on the
// revocation VM the runtime detects the waits-for cycle, rolls back one
// thread's section (restoring both balances), lets the other proceed, and
// re-executes the victim. The invariant (total money) holds throughout.
//
//	go run ./examples/deadlock
package main

import (
	"fmt"
	"os"

	"repro/revoke"
)

func transfer(t *revoke.Task, from, to *revoke.Object, mFrom, mTo *revoke.Monitor, amount revoke.Word) {
	t.Synchronized(mFrom, func() {
		t.Work(500) // widen the window so the deadlock actually forms
		t.Synchronized(mTo, func() {
			f := t.ReadField(from, 0)
			t.WriteField(from, 0, f-amount)
			tv := t.ReadField(to, 0)
			t.WriteField(to, 0, tv+amount)
		})
	})
}

func run(mode revoke.Mode) {
	var rec revoke.TraceRecorder
	rt := revoke.NewRuntime(revoke.Config{
		Mode:              mode,
		DeadlockDetection: mode == revoke.Revocation,
		TrackDependencies: true,
		Tracer:            &rec,
		Sched:             revoke.SchedConfig{Quantum: 100},
	})
	h := rt.Heap()
	a := h.AllocObject("AccountA", revoke.FieldSpec{Name: "balance", Init: 1000})
	b := h.AllocObject("AccountB", revoke.FieldSpec{Name: "balance", Init: 1000})
	ma, mb := rt.MonitorFor(a), rt.MonitorFor(b)

	rt.Spawn("a->b", revoke.NormPriority, func(t *revoke.Task) {
		transfer(t, a, b, ma, mb, 100)
	})
	rt.Spawn("b->a", revoke.NormPriority, func(t *revoke.Task) {
		transfer(t, b, a, mb, ma, 250)
	})

	err := rt.Run()
	st := rt.Stats()
	fmt.Printf("%v VM: ", mode)
	if err != nil {
		fmt.Printf("WEDGED — %v\n", err)
		return
	}
	fmt.Printf("completed. balances A=%d B=%d (total %d), deadlocks detected=%d broken=%d rollbacks=%d\n",
		a.Get(0), b.Get(0), a.Get(0)+b.Get(0), st.DeadlocksDetected, st.DeadlocksBroken, st.Rollbacks)
	if ev := rec.Filter(func(e revoke.TraceEvent) bool {
		return e.Kind.String() == "deadlock-detected" || e.Kind.String() == "deadlock-broken" || e.Kind.String() == "rollback"
	}); len(ev) > 0 {
		fmt.Println("  key events:")
		for _, e := range ev {
			fmt.Printf("    %v\n", e)
		}
	}
}

func main() {
	fmt.Println("Two transfers locking two accounts in opposite orders:")
	run(revoke.Unmodified)
	run(revoke.Revocation)
	_ = os.Stdout
}
