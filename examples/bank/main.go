// Bank: a realistic multi-lock application under four lock protocols.
//
// Eight accounts, each guarded by its own monitor. Normal-priority tellers
// transfer between random account pairs; low-priority batch threads post
// interest to every account in long synchronized sections; high-priority
// auditors periodically scan all accounts and their latency is the figure
// of merit. Every balance carries a checksum (checksum == 7*balance), so
// torn updates are detectable, and total money must be conserved.
//
// The program compares plain blocking, priority inheritance, priority
// ceiling and the paper's revocation scheme, then re-runs the revocation VM
// with tellers locking in *random* order — a deadlock factory only the
// revocation protocol survives.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/bench"
)

func main() {
	p := bench.DefaultBankParams()
	p.Rounds = 8

	fmt.Println("bank workload: 8 accounts, 4 tellers, 2 batch posters (low), 2 auditors (high)")
	fmt.Printf("%-12s %12s %12s %10s %10s %10s %6s %6s\n",
		"protocol", "audit-worst", "audit-mean", "elapsed", "rollbacks", "deadlocks", "money", "atomic")
	for _, proto := range baseline.Protocols {
		res, err := bench.RunBank(proto, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v: %v\n", proto, err)
			continue
		}
		fmt.Printf("%-12v %12d %12.0f %10d %10d %10d %6v %6v\n",
			proto, res.AuditWorst, res.AuditMean, res.Elapsed,
			res.Stats.Rollbacks, res.Stats.DeadlocksBroken,
			res.Conserved, res.ConsistentObservations)
	}

	fmt.Println("\nsame workload, tellers locking account pairs in RANDOM order (deadlock-prone):")
	p.OrderedTransfers = false
	for _, proto := range []baseline.Protocol{baseline.Unmodified, baseline.Revocation} {
		res, err := bench.RunBank(proto, p)
		if err != nil {
			fmt.Printf("%-12v WEDGED: %v\n", proto, err)
			continue
		}
		fmt.Printf("%-12v completed: deadlocks-broken=%d rollbacks=%d money-conserved=%v\n",
			proto, res.Stats.DeadlocksBroken, res.Stats.Rollbacks, res.Conserved)
	}
}
