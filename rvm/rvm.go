// Package rvm is the public face of the reproduction's bytecode toolchain:
// the assembler, the verifier, the paper's §3.1.1 rewriting passes and the
// two execution tiers. It lets a downstream user write programs for the
// simulated virtual machine without touching internal packages:
//
//	prog, err := rvm.Assemble(src)          // parse + resolve
//	prog, err = rvm.Rewrite(prog)           // inject rollback scopes
//	rt := revoke.NewRevocationRuntime(revoke.SchedConfig{})
//	env, err := rvm.Run(rt, prog, rvm.Options{Rewritten: true})
//
// See examples/bytecode/inversion.rvm for the assembler syntax and
// cmd/rvmrun for a complete driver.
package rvm

import (
	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/rewrite"
)

// Program model types.
type (
	// Program is a complete assembled unit.
	Program = bytecode.Program
	// Method is one method body.
	Method = bytecode.Method
	// Class declares object fields.
	Class = bytecode.Class
	// Instr is one instruction.
	Instr = bytecode.Instr
	// Handler is one exception-table entry.
	Handler = bytecode.Handler
	// Op is an opcode.
	Op = bytecode.Op
	// Env is the execution environment hosting a program's threads.
	Env = interp.Env
	// Options configures execution (tier, output, instruction cost).
	Options = interp.Options
	// NativeFunc implements a native method.
	NativeFunc = interp.NativeFunc
	// BarrierAnalysis is the §1.1 write-barrier elision analysis result.
	BarrierAnalysis = rewrite.BarrierAnalysis
	// Facts is the whole-program static analysis result: sections and
	// their static revocability, lock-order cycles, elidable stores.
	Facts = analysis.Facts
)

// Assemble parses the textual program form (see bytecode.Assemble for the
// grammar) and resolves symbols.
func Assemble(src string) (*Program, error) { return bytecode.Assemble(src) }

// MustAssemble is Assemble panicking on error.
func MustAssemble(src string) *Program { return bytecode.MustAssemble(src) }

// Verify checks the program and computes stack depths.
func Verify(p *Program) error { return bytecode.Verify(p) }

// Disassemble renders a method in assembler form.
func Disassemble(m *Method) string { return bytecode.Disassemble(m) }

// Rewrite applies the paper's transformations (synchronized-method
// lowering + rollback scopes) to a copy of the program.
func Rewrite(p *Program) (*Program, error) { return rewrite.Rewrite(p) }

// AnalyzeBarriers runs the write-barrier elision analysis.
func AnalyzeBarriers(p *Program) *BarrierAnalysis { return rewrite.AnalyzeBarriers(p) }

// ApplyElision rewrites the stores of barrier-elidable methods to raw
// forms; returns the number of stores rewritten.
func ApplyElision(p *Program, a *BarrierAnalysis) int { return rewrite.ApplyElision(p, a) }

// Analyze runs the whole-program static analysis (held regions, static
// revocability, lock-order cycles, per-instruction elision). Pass the
// result to execution via Options.Facts to pre-mark non-revocable monitors
// and keep fresh-target elision sound (allocation logging).
func Analyze(p *Program) (*Facts, error) { return analysis.Analyze(p) }

// ApplyStaticElision rewrites every store Analyze proved barrier-free to
// its raw form; returns the number rewritten. The program must then run
// with Options.Facts set to the same facts.
func ApplyStaticElision(p *Program, f *Facts) int { return rewrite.ApplyStaticElision(p, f) }

// NewEnv prepares an execution environment over a fresh runtime.
func NewEnv(rt *core.Runtime, p *Program, opts Options) (*Env, error) {
	return interp.NewEnv(rt, p, opts)
}

// Run builds an Env, spawns the program's declared threads and drives the
// runtime to completion.
func Run(rt *core.Runtime, p *Program, opts Options) (*Env, error) {
	return interp.Run(rt, p, opts)
}
