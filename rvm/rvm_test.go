package rvm_test

import (
	"testing"

	"repro/revoke"
	"repro/rvm"
)

const program = `
static lockRef = 0
static data = 0
class Lock {
    unused
}
thread init priority 9 run setup
thread low priority 2 run lowMain
thread high priority 8 run highMain

method setup locals 1 {
    newobj Lock
    store 0
    load 0
    putstatic lockRef
    return
}
method lowMain locals 1 {
  spin:
    getstatic lockRef
    ifz spin
    getstatic lockRef
    store 0
    sync 0 {
        const 1
        putstatic data
        const 3000
        work
    }
    return
}
method highMain locals 1 {
    const 300
    sleep
    getstatic lockRef
    store 0
    sync 0 {
        getstatic data
        const 10
        add
        putstatic data
    }
    return
}
`

// TestPublicPipeline drives assemble → verify → rewrite → run through the
// public API only.
func TestPublicPipeline(t *testing.T) {
	prog, err := rvm.Assemble(program)
	if err != nil {
		t.Fatal(err)
	}
	if err := rvm.Verify(prog); err != nil {
		t.Fatal(err)
	}
	prog, err = rvm.Rewrite(prog)
	if err != nil {
		t.Fatal(err)
	}
	rt := revoke.NewRevocationRuntime(revoke.SchedConfig{Quantum: 200})
	env, err := rvm.Run(rt, prog, rvm.Options{Rewritten: true})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats().Rollbacks == 0 {
		t.Fatal("no rollback through the public pipeline")
	}
	idx, ok := prog.StaticIndex("data")
	if !ok {
		t.Fatal("static missing")
	}
	// high saw rolled-back 0, wrote 10; low re-executed and wrote 1.
	if got := env.RT.Heap().GetStatic(idx); got != 1 {
		t.Fatalf("data = %d, want 1", got)
	}
}

// TestPublicAnalysis exercises the elision surface.
func TestPublicAnalysis(t *testing.T) {
	prog := rvm.MustAssemble(`
static g = 0
method free locals 0 {
    const 1
    putstatic g
    return
}
`)
	a := rvm.AnalyzeBarriers(prog)
	if !a.Elidable("free") {
		t.Fatal("free method not elidable")
	}
	if n := rvm.ApplyElision(prog, a); n != 1 {
		t.Fatalf("elided %d stores, want 1", n)
	}
	if err := rvm.Verify(prog); err != nil {
		t.Fatal(err)
	}
}

// TestPublicDisassemble covers the rendering surface.
func TestPublicDisassemble(t *testing.T) {
	prog := rvm.MustAssemble(program)
	m, _ := prog.Method("lowMain")
	if rvm.Disassemble(m) == "" {
		t.Fatal("empty disassembly")
	}
}
